"""Convergence measurement: run a protocol from adversarial starts until a predicate holds.

This is the workhorse behind every timing experiment: it packages the
"configuration builder -> simulation -> run until safe -> record steps" loop,
repeated over independent trials, into :func:`measure_convergence`, and also
provides :func:`closure_check` for the complementary safety property (once
safe, outputs never change).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, Sequence, TypeVar

from repro.analysis.stats import SampleSummary
from repro.core.configuration import Configuration
from repro.core.errors import InvalidParameterError
from repro.core.protocol import Protocol
from repro.core.rng import RandomSource, ensure_source
from repro.core.simulator import Simulation
from repro.topology.graph import Population

StateT = TypeVar("StateT")

#: Builds an initial configuration for one trial: (trial_rng) -> Configuration.
ConfigurationFactory = Callable[[RandomSource], Configuration]
#: Convergence predicate evaluated on the live state list.
Predicate = Callable[[Sequence[StateT]], bool]
#: Builds a simulation for one trial (hook for oracle-augmented simulations).
SimulationFactory = Callable[[Protocol, Population, Configuration, RandomSource], Simulation]


def default_simulation_factory(protocol: Protocol, population: Population,
                               initial: Configuration, rng: RandomSource) -> Simulation:
    """The standard :class:`Simulation` constructor used unless a factory overrides it."""
    return Simulation(protocol, population, initial, rng=rng.randint(0, 2 ** 31 - 1))


@dataclass
class ConvergenceResult(Generic[StateT]):
    """Steps-to-convergence over several independent adversarial trials."""

    protocol_name: str
    population_size: int
    trials: int
    steps: List[int] = field(default_factory=list)
    failures: int = 0

    @property
    def all_converged(self) -> bool:
        """True when every trial reached the predicate within its budget."""
        return self.failures == 0

    def summary(self) -> SampleSummary:
        """Mean/median/min/max of the converged trials' step counts.

        An all-failed run (every trial missed its budget) degrades to
        :meth:`SampleSummary.empty` — count 0 and NaN statistics — instead
        of raising ``InvalidParameterError`` out of a report path: callers
        render ``failures=trials``, not a traceback.
        """
        if not self.steps:
            return SampleSummary.empty()
        return SampleSummary.of(self.steps)

    def mean_steps(self) -> float:
        """Mean steps over converged trials (``inf`` when nothing converged)."""
        return self.summary().mean if self.steps else float("inf")


def measure_convergence(
    protocol: Protocol[StateT],
    population: Population,
    configuration_factory: ConfigurationFactory,
    predicate: Predicate,
    trials: int,
    max_steps: int,
    check_interval: int = 64,
    rng: "RandomSource | int | None" = None,
    simulation_factory: SimulationFactory = default_simulation_factory,
) -> ConvergenceResult[StateT]:
    """Run ``trials`` independent executions and record the steps to reach ``predicate``.

    Each trial draws its own initial configuration from
    ``configuration_factory`` and its own scheduler seed; trials that do not
    converge within ``max_steps`` are counted in ``failures`` instead of
    contributing a step count.
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    source = ensure_source(rng)
    result: ConvergenceResult[StateT] = ConvergenceResult(
        protocol_name=protocol.name,
        population_size=population.size,
        trials=trials,
    )
    for trial in range(trials):
        trial_rng = source.spawn(f"trial-{trial}")
        initial = configuration_factory(trial_rng.spawn("configuration"))
        simulation = simulation_factory(protocol, population, initial,
                                        trial_rng.spawn("scheduler"))
        run = simulation.run_until(predicate, max_steps=max_steps,
                                   check_interval=check_interval)
        if run.satisfied:
            result.steps.append(run.steps)
        else:
            result.failures += 1
    return result


@dataclass(frozen=True)
class PhaseSummary:
    """Step statistics for one scenario phase across a batch of trials.

    ``summary`` covers the trials that *converged in this phase*;
    ``failures`` counts the trials whose run ended unconverged here — the
    phase a scenario failure is attributed to.  Trials that never reached
    this phase (their run stopped at an earlier phase's budget miss)
    contribute to neither number.
    """

    phase: int
    perturbation: str
    summary: SampleSummary
    failures: int

    @property
    def converged(self) -> int:
        """Trials that completed this phase within its budget."""
        return self.summary.count


def summarize_phases(trials: Sequence) -> List[PhaseSummary]:
    """Per-phase re-convergence summaries over one batch of scenario trials.

    ``trials`` is any sequence of objects exposing a ``phases`` sequence of
    per-phase records (``phase``/``perturbation``/``steps``/``converged`` —
    the shape :class:`repro.api.executor.TrialResult` reports), so it works
    on live results and on records rebuilt from the store alike.  Legacy
    trials (empty ``phases``) contribute nothing; a batch of them summarizes
    to the empty list.
    """
    steps_by_phase: dict = {}
    failures_by_phase: dict = {}
    labels: dict = {}
    for trial in trials:
        for phase in getattr(trial, "phases", ()):
            labels.setdefault(phase.phase, phase.perturbation)
            if phase.converged:
                steps_by_phase.setdefault(phase.phase, []).append(phase.steps)
            else:
                failures_by_phase[phase.phase] = (
                    failures_by_phase.get(phase.phase, 0) + 1)
    return [
        PhaseSummary(
            phase=index,
            perturbation=labels[index],
            summary=(SampleSummary.of(steps_by_phase[index])
                     if steps_by_phase.get(index) else SampleSummary.empty()),
            failures=failures_by_phase.get(index, 0),
        )
        for index in sorted(labels)
    ]


@dataclass(frozen=True)
class ClosureReport:
    """Outcome of a closure check: did the outputs ever change after the safe point?"""

    steps_checked: int
    output_changes: int
    leader_always_unique: bool

    @property
    def closed(self) -> bool:
        """True when no output changed and the leader stayed unique throughout."""
        return self.output_changes == 0 and self.leader_always_unique


def closure_check(
    protocol: Protocol[StateT],
    population: Population,
    safe_configuration: Configuration,
    steps: int,
    rng: "RandomSource | int | None" = None,
) -> ClosureReport:
    """Run ``steps`` interactions from a (claimed) safe configuration and watch the outputs.

    The closure half of self-stabilization: outputs must never change once a
    safe configuration is reached.  Any observed change is counted rather than
    raised, so tests can report how badly closure failed if it does.
    """
    source = ensure_source(rng)
    simulation = default_simulation_factory(protocol, population, safe_configuration, source)
    reference_outputs = [protocol.output(state) for state in simulation.states()]
    changes = 0
    unique = True
    for _ in range(steps):
        simulation.step()
        outputs = [protocol.output(state) for state in simulation.states()]
        if outputs != reference_outputs:
            changes += 1
            reference_outputs = outputs
        leaders = sum(1 for state in simulation.states() if protocol.is_leader(state))
        if leaders != 1:
            unique = False
    return ClosureReport(steps_checked=steps, output_changes=changes,
                         leader_always_unique=unique)


def leader_count_trajectory(
    protocol: Protocol[StateT],
    population: Population,
    initial: Configuration,
    steps: int,
    sample_interval: int,
    rng: "RandomSource | int | None" = None,
) -> List[tuple]:
    """``(step, leader count)`` samples along one execution — used by examples and figures."""
    if sample_interval < 1:
        raise InvalidParameterError(f"sample_interval must be >= 1, got {sample_interval}")
    source = ensure_source(rng)
    simulation = default_simulation_factory(protocol, population, initial, source)
    trajectory = [(0, simulation.leader_count())]
    executed = 0
    while executed < steps:
        burst = min(sample_interval, steps - executed)
        simulation.run(burst)
        executed += burst
        trajectory.append((executed, simulation.leader_count()))
    return trajectory
