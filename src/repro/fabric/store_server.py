"""The wire side of the results store: GET/PUT records by digest.

``repro-ssle store-serve`` wraps a plain on-disk :class:`ResultsStore` in
the fabric's threaded JSON server. The protocol is two routes:

* ``GET /records/{digest}`` — the full record JSON (the same document the
  disk holds), or 404 on miss/corruption. Clients re-validate; the server
  never vouches for trial contents beyond what the local store would.
* ``PUT /records/{digest}`` — ``{"meta": {...}, "trials": [...]}``. The
  body's trials are validated with the *store's own* validator (contiguous
  indices, typed fields) before touching disk, and the write goes through
  :meth:`ResultsStore.save` — so the never-shrink merge, the per-record
  flock, and the atomic replace all apply server-side, and two workers
  racing to top up one record resolve exactly as two local processes would.

Plus ``GET /`` (identity/summary) and ``GET /health`` for probes. The
server holds no state outside the store directory: kill it, restart it,
point it at the same root, and nothing is lost.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from repro.fabric.httpd import JsonApp
from repro.store.store import ResultsStore, validate_trials

__all__ = ["StoreApp"]

_DIGEST = re.compile(r"[0-9a-f]{32}")

#: Record bodies carry whole trial batches; give them far more headroom
#: than control-plane messages get.
_MAX_RECORD_BYTES = 64 << 20


class StoreApp(JsonApp):
    """Routes for one :class:`ResultsStore` (the app behind ``store-serve``)."""

    max_body_bytes = _MAX_RECORD_BYTES

    def __init__(self, store: ResultsStore) -> None:
        self.store = store

    def handle(self, method: str, path: str,
               body: Optional[Dict[str, object]],
               ) -> Tuple[int, Dict[str, object]]:
        if path == "/" and method == "GET":
            return 200, {"service": "repro-store", **self.store.summary()}
        if path == "/health" and method == "GET":
            return 200, {"ok": True}
        if path.startswith("/records/"):
            digest = path[len("/records/"):]
            if not _DIGEST.fullmatch(digest):
                return 400, {"error": f"malformed digest {digest!r}"}
            if method == "GET":
                return self._get_record(digest)
            if method == "PUT":
                return self._put_record(digest, body)
            return 405, {"error": f"{method} not allowed on {path}"}
        return 404, {"error": f"no route for {method} {path}"}

    def _get_record(self, digest: str) -> Tuple[int, Dict[str, object]]:
        record = self.store.record(digest)
        if record is None or validate_trials(record.get("trials")) is None:
            return 404, {"error": f"no record for digest {digest}"}
        return 200, {"record": record}

    def _put_record(self, digest: str, body: Optional[Dict[str, object]],
                    ) -> Tuple[int, Dict[str, object]]:
        if not self.store.write:
            return 403, {"error": "store is read-only (--no-store-write)"}
        if body is None:
            return 400, {"error": "PUT /records requires a JSON body"}
        meta = body.get("meta")
        if not isinstance(meta, dict):
            return 400, {"error": "'meta' must be an object"}
        trials = validate_trials(body.get("trials"))
        if trials is None:
            return 400, {"error": "'trials' failed validation (must be a "
                                  "contiguous, fully-typed trial list)"}
        self.store.save(digest, meta, trials)
        stored = self.store.load(digest)
        return 200, {"stored": len(stored) if stored is not None else 0}
