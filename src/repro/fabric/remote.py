"""A ``ResultsStore`` served over HTTP, with a never-fail client.

:class:`RemoteStore` implements the store interface the executor consumes —
``load``/``save``/``stats`` plus the ``write``/``served``/``executed``
counters — against a ``repro-ssle store-serve`` daemon. Its contract is
that *no store failure ever fails a sweep*:

* ``load`` returns ``None`` (a plain cache miss) on any defect — server
  unreachable after retries, 5xx, corrupt payload, digest mismatch — and
  the executor recomputes, exactly as it would for a cold local store.
* ``save`` swallows failures the same way: the trials were already computed
  and returned to the caller; losing a write-back costs a future recompute,
  never a result.

Every degraded call increments ``degraded`` so tests and operators can see
the difference between a healthy cold cache and a flapping server. The
server performs the same never-shrink merge a local store does (it *is* a
local store, behind :class:`repro.fabric.store_server.StoreApp`), so
concurrent workers topping up one record over the wire keep the
longest-prefix-wins guarantee.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.api.executor import TrialResult
from repro.fabric.retry import RetryPolicy
from repro.fabric.transport import (
    TransportError,
    parse_http_url,
    request_json,
)
from repro.store.store import SCHEMA_VERSION, validate_trials

__all__ = ["RemoteStore", "DEFAULT_STORE_PORT"]

#: ``repro-ssle store-serve``'s default port (8642 belongs to ``serve``).
DEFAULT_STORE_PORT = 8651


class RemoteStore:
    """Client half of the wire-served results store (drop-in for sweeps)."""

    def __init__(self, url: str, write: bool = True,
                 policy: Optional[RetryPolicy] = None) -> None:
        self.url = url.rstrip("/")
        self.host, self.port = parse_http_url(self.url, DEFAULT_STORE_PORT)
        self.write = write
        self.policy = policy or RetryPolicy()
        #: Counters mirror :class:`ResultsStore` (maintained by the executor)
        self.served = 0
        self.executed = 0
        #: Calls that fell back to local behavior because the server was
        #: unreachable or unwell — the "how degraded was this run" signal.
        self.degraded = 0

    # ``root`` keeps log lines and ``stats()`` consumers uniform across
    # local and remote stores.
    @property
    def root(self) -> str:
        return self.url

    def load(self, digest: str) -> Optional[List[TrialResult]]:
        """The server's trials for ``digest``, or ``None`` (miss/degraded)."""
        try:
            status, payload = request_json(
                self.host, self.port, "GET", f"/records/{digest}",
                policy=self.policy)
        except TransportError:
            self.degraded += 1
            return None
        if status != 200:
            if status >= 500:
                self.degraded += 1
            return None
        record = payload.get("record")
        if (not isinstance(record, dict)
                or record.get("schema") != SCHEMA_VERSION
                or record.get("digest") != digest):
            return None
        return validate_trials(record.get("trials"))

    def save(self, digest: str, meta: Dict[str, object],
             trials: Sequence[TrialResult]) -> None:
        """Push one batch record; the server merges never-shrink.

        Failures are absorbed (counted in ``degraded``): a lost write-back
        is a future recompute, not an error the sweep should see.
        """
        if not self.write:
            return
        body = {
            "meta": _jsonable_meta(meta),
            "trials": [trial.to_dict() for trial in trials],
        }
        try:
            status, _ = request_json(
                self.host, self.port, "PUT", f"/records/{digest}", body,
                policy=self.policy)
        except TransportError:
            self.degraded += 1
            return
        if status != 200:
            self.degraded += 1

    def stats(self) -> Dict[str, object]:
        """Reuse counters plus the server location (JSON-ready)."""
        return {
            "root": self.url,
            "write": self.write,
            "served": self.served,
            "executed": self.executed,
            "degraded": self.degraded,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteStore(url={self.url!r}, write={self.write})"


def _jsonable_meta(meta: Dict[str, object]) -> Dict[str, object]:
    """Meta restricted to what JSON can carry (tuples become lists)."""
    return json.loads(json.dumps(meta, default=_tuples_as_lists))


def _tuples_as_lists(value: object) -> object:
    if isinstance(value, tuple):  # pragma: no cover - json handles tuples
        return list(value)
    raise TypeError(f"meta value {value!r} is not JSON-serializable")
