"""HTTP/JSON transport with the fabric's retry policy baked in.

One function, :func:`request_json`, covers every remote call the fabric
makes: it opens a fresh ``http.client`` connection per attempt (a dead
keep-alive socket is exactly the failure we are defending against), applies
the policy's per-attempt timeout, and retries on connection errors, 5xx
responses, and bodies that fail to decode as JSON (a truncated response from
a dying server looks like the latter). 4xx responses are *not* retried —
they are the server telling us the request itself is wrong.

On exhaustion the behavior splits: if the last attempt produced *any* HTTP
response (even a 500 or garbage body) the ``(status, payload)`` pair is
returned and the caller decides; if no attempt ever got a response,
:class:`TransportError` is raised. That split is what lets
:class:`repro.fabric.remote.RemoteStore` distinguish "server said no"
(treat as miss) from "server unreachable" (degrade and recompute).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Callable, Dict, Optional, Tuple

from repro.fabric.retry import RetryPolicy

__all__ = ["TransportError", "parse_http_url", "request_json"]

DEFAULT_POLICY = RetryPolicy()


class TransportError(ConnectionError):
    """No attempt produced an HTTP response (refused, timed out, reset)."""


def parse_http_url(url: str, default_port: int = 80) -> Tuple[str, int]:
    """Split ``http://host[:port][/]`` into ``(host, port)``.

    Only plain ``http`` is supported — the fabric is a trusted-network tool
    (a CI matrix, a lab cluster), not an internet-facing service.
    """
    prefix = "http://"
    if url.startswith("https://"):
        raise ValueError(
            f"unsupported store/coordinator URL {url!r}: the fabric speaks "
            "plain http:// only (run it inside a trusted network)")
    if not url.startswith(prefix):
        raise ValueError(
            f"expected an http:// URL, got {url!r}")
    rest = url[len(prefix):].strip("/")
    if not rest or "/" in rest:
        raise ValueError(
            f"expected http://host[:port] with no path, got {url!r}")
    host, _, port_text = rest.partition(":")
    if not host:
        raise ValueError(f"missing host in URL {url!r}")
    if not port_text:
        return host, default_port
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in URL {url!r}") from None
    if not 0 < port < 65536:
        raise ValueError(f"port out of range in URL {url!r}")
    return host, port


class _RetryableResponse(Exception):
    """Internal: an HTTP response worth retrying (5xx or undecodable body)."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        super().__init__(status)
        self.status = status
        self.payload = payload


def _attempt(host: str, port: int, method: str, path: str,
             body: Optional[bytes], timeout: float,
             ) -> Tuple[int, Dict[str, object]]:
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        status = response.status
    finally:
        connection.close()
    try:
        payload = json.loads(raw.decode("utf-8")) if raw else {}
        if not isinstance(payload, dict):
            payload = {"value": payload}
    except (ValueError, UnicodeDecodeError):
        # A truncated or garbled body: the server (or something between us
        # and it) is unwell. Retryable regardless of the status line.
        raise _RetryableResponse(
            status, {"error": f"undecodable response body ({len(raw)} bytes)"}
        ) from None
    if status >= 500:
        raise _RetryableResponse(status, payload)
    return status, payload


def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, object]] = None,
    *,
    policy: RetryPolicy = DEFAULT_POLICY,
    sleep: Callable[[float], None] = time.sleep,
) -> Tuple[int, Dict[str, object]]:
    """One JSON request/response exchange under the retry policy.

    Returns ``(status, payload)``. Raises :class:`TransportError` only when
    every attempt failed at the connection level; a 5xx or garbled body that
    persists through all retries is *returned* (last status wins) so the
    caller can degrade deliberately.
    """
    body = json.dumps(payload).encode("utf-8") if payload is not None else None
    last_response: Optional[_RetryableResponse] = None
    last_error: Optional[Exception] = None
    for attempt in range(1, policy.attempts + 1):
        try:
            return _attempt(host, port, method, path, body, policy.timeout)
        except _RetryableResponse as response:
            last_response, last_error = response, None
        except (OSError, http.client.HTTPException) as error:
            last_error, last_response = error, None
        if attempt < policy.attempts:
            sleep(policy.backoff(attempt))
    if last_response is not None:
        return last_response.status, last_response.payload
    raise TransportError(
        f"{method} http://{host}:{port}{path} failed after "
        f"{policy.attempts} attempt(s): {last_error}") from last_error
