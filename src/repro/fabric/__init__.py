"""Fault-tolerant distributed sweep fabric.

Three cooperating pieces turn a scaling sweep into work a fleet absorbs:

* a **store server** (``repro-ssle store-serve``) putting the
  content-addressed results store on the wire, with the same never-shrink
  merge semantics a local store has (:mod:`repro.fabric.store_server`,
  client :class:`~repro.fabric.remote.RemoteStore`);
* a **coordinator** (``repro-ssle fabric-serve``) handing out sweep points
  under TTL leases, reclaiming them when workers die
  (:mod:`repro.fabric.coordinator`);
* a **worker loop** (``repro-ssle work``) that claims, heartbeats,
  executes, and writes back through the store
  (:mod:`repro.fabric.worker`).

Every remote call shares one bounded retry/backoff/jitter/timeout policy
(:mod:`repro.fabric.retry`, :mod:`repro.fabric.transport`). The store is
the only durable state: workers and the coordinator alike may crash
silently and be replaced, and per-index seed derivation guarantees the
reassembled sweep is bit-identical to a serial single-machine run.
"""

from repro.fabric.client import FabricClient, FabricError
from repro.fabric.coordinator import Coordinator
from repro.fabric.coordinator_server import CoordinatorApp
from repro.fabric.httpd import JsonHttpServer
from repro.fabric.remote import RemoteStore
from repro.fabric.retry import RetryPolicy, call_with_retry
from repro.fabric.store_server import StoreApp
from repro.fabric.transport import TransportError, parse_http_url, request_json
from repro.fabric.worker import work_loop

__all__ = [
    "Coordinator",
    "CoordinatorApp",
    "FabricClient",
    "FabricError",
    "JsonHttpServer",
    "RemoteStore",
    "RetryPolicy",
    "StoreApp",
    "TransportError",
    "call_with_retry",
    "parse_http_url",
    "request_json",
    "work_loop",
]
