"""HTTP facade over the :class:`Coordinator` lease state machine.

``repro-ssle fabric-serve`` puts these routes on the wire:

========  ====================  =============================================
method    path                  body / response
========  ====================  =============================================
GET       /                     identity + sweep counts
GET       /health               liveness probe
POST      /workers              ``{meta?}`` -> 201 ``{worker}``
POST      /sweeps               submission payload -> 201 ``{sweep, points}``
GET       /sweeps               sweep summaries
GET       /sweeps/{id}          full status incl. per-point detail
POST      /claim                ``{worker}`` -> work/wait/idle/unknown-worker
POST      /heartbeat            ``{worker, sweep, point}`` -> ok/lost
POST      /complete             ``{worker, sweep, point}`` -> ok/stale/unknown
POST      /fail                 ``{worker, sweep, point, error}``
========  ====================  =============================================

All protocol outcomes are HTTP 200 payloads (``lost``, ``stale``,
``unknown-worker`` are states a healthy worker handles, not failures);
400 is reserved for malformed requests and 404 for unknown routes/sweeps.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.fabric.coordinator import Coordinator
from repro.fabric.httpd import JsonApp
from repro.service.requests import ValidationError

__all__ = ["CoordinatorApp"]

Response = Tuple[int, Dict[str, object]]


def _lease_fields(body: Optional[Dict[str, object]],
                  need_error: bool = False) -> Tuple[str, str, int, str]:
    """Extract ``(worker, sweep, point[, error])``, raising on defects."""
    if body is None:
        raise ValueError("a JSON body is required")
    worker = body.get("worker")
    sweep = body.get("sweep")
    point = body.get("point")
    if not isinstance(worker, str) or not worker:
        raise ValueError("'worker' must be a worker id")
    if not isinstance(sweep, str) or not sweep:
        raise ValueError("'sweep' must be a sweep id")
    if not isinstance(point, int) or isinstance(point, bool) or point < 0:
        raise ValueError("'point' must be a non-negative integer")
    error = body.get("error", "")
    if need_error and not isinstance(error, str):
        raise ValueError("'error' must be a string")
    return worker, sweep, point, str(error)


class CoordinatorApp(JsonApp):
    """Routes for one :class:`Coordinator` (the app behind ``fabric-serve``)."""

    def __init__(self, coordinator: Coordinator) -> None:
        self.coordinator = coordinator

    def handle(self, method: str, path: str,
               body: Optional[Dict[str, object]]) -> Response:
        try:
            return self._route(method, path, body)
        except ValidationError as error:
            return 400, {"error": str(error)}
        except ValueError as error:
            return 400, {"error": str(error)}

    def _route(self, method: str, path: str,
               body: Optional[Dict[str, object]]) -> Response:
        if path == "/" and method == "GET":
            return 200, {"service": "repro-fabric",
                         "lease_ttl": self.coordinator.lease_ttl,
                         "max_attempts": self.coordinator.max_attempts,
                         "sweeps": self.coordinator.sweeps()}
        if path == "/health" and method == "GET":
            return 200, {"ok": True}
        if path == "/workers" and method == "POST":
            meta = (body or {}).get("meta", {})
            if not isinstance(meta, dict):
                raise ValueError("'meta' must be an object")
            return 201, {"worker": self.coordinator.register(meta)}
        if path == "/sweeps" and method == "POST":
            return 201, self.coordinator.submit(body)
        if path == "/sweeps" and method == "GET":
            return 200, {"sweeps": self.coordinator.sweeps()}
        if path.startswith("/sweeps/") and method == "GET":
            status = self.coordinator.sweep_status(path[len("/sweeps/"):])
            if status is None:
                return 404, {"error": f"no sweep at {path}"}
            return 200, status
        if path == "/claim" and method == "POST":
            worker = (body or {}).get("worker")
            if not isinstance(worker, str) or not worker:
                raise ValueError("'worker' must be a worker id")
            return 200, self.coordinator.claim(worker)
        if path == "/heartbeat" and method == "POST":
            worker, sweep, point, _ = _lease_fields(body)
            return 200, self.coordinator.heartbeat(worker, sweep, point)
        if path == "/complete" and method == "POST":
            worker, sweep, point, _ = _lease_fields(body)
            return 200, self.coordinator.complete(worker, sweep, point)
        if path == "/fail" and method == "POST":
            worker, sweep, point, error = _lease_fields(body, need_error=True)
            return 200, self.coordinator.fail(worker, sweep, point, error)
        return 404, {"error": f"no route for {method} {path}"}
