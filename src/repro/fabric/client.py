"""Typed client for the coordinator's HTTP protocol.

Used by the worker loop, the CLI, and tests. Every call rides
:func:`repro.fabric.transport.request_json`, so retry/backoff/timeout come
for free; what this layer adds is the error split: a 4xx/unexpected status
raises :class:`FabricError` (the request is wrong — retrying won't help),
while connection-level failure surfaces as
:class:`~repro.fabric.transport.TransportError` after the policy's retries
(the coordinator is *gone* — the worker decides whether to keep polling).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.fabric.retry import RetryPolicy
from repro.fabric.transport import parse_http_url, request_json

__all__ = ["FabricClient", "FabricError", "DEFAULT_COORDINATOR_PORT"]

#: ``repro-ssle fabric-serve``'s default port (8642 is the experiment
#: service, 8651 the store server).
DEFAULT_COORDINATOR_PORT = 8652


class FabricError(RuntimeError):
    """The coordinator refused a request (4xx or unexpected status)."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        message = payload.get("error") or f"unexpected status {status}"
        super().__init__(f"{message} (HTTP {status})")
        self.status = status
        self.payload = payload


class FabricClient:
    """One coordinator endpoint, with the fabric's retry policy."""

    def __init__(self, url: str,
                 policy: Optional[RetryPolicy] = None) -> None:
        self.url = url.rstrip("/")
        self.host, self.port = parse_http_url(self.url,
                                              DEFAULT_COORDINATOR_PORT)
        self.policy = policy or RetryPolicy()

    def _call(self, method: str, path: str,
              body: Optional[Dict[str, object]] = None,
              expect: int = 200) -> Dict[str, object]:
        status, payload = request_json(self.host, self.port, method, path,
                                       body, policy=self.policy)
        if status != expect:
            raise FabricError(status, payload)
        return payload

    # ------------------------------------------------------------------ #
    # Control plane
    # ------------------------------------------------------------------ #
    def info(self) -> Dict[str, object]:
        return self._call("GET", "/")

    def register(self, meta: Optional[Dict[str, object]] = None) -> str:
        payload = self._call("POST", "/workers", {"meta": meta or {}},
                             expect=201)
        return str(payload["worker"])

    def submit(self, request_payload: Dict[str, object]) -> str:
        """Submit a sweep; returns its id. 400s raise :class:`FabricError`."""
        payload = self._call("POST", "/sweeps", request_payload, expect=201)
        return str(payload["sweep"])

    def sweeps(self) -> Dict[str, object]:
        return self._call("GET", "/sweeps")

    def status(self, sweep_id: str) -> Dict[str, object]:
        return self._call("GET", f"/sweeps/{sweep_id}")

    # ------------------------------------------------------------------ #
    # The lease protocol
    # ------------------------------------------------------------------ #
    def claim(self, worker_id: str) -> Dict[str, object]:
        return self._call("POST", "/claim", {"worker": worker_id})

    def heartbeat(self, worker_id: str, sweep_id: str,
                  index: int) -> Dict[str, object]:
        return self._call("POST", "/heartbeat",
                          {"worker": worker_id, "sweep": sweep_id,
                           "point": index})

    def complete(self, worker_id: str, sweep_id: str,
                 index: int) -> Dict[str, object]:
        return self._call("POST", "/complete",
                          {"worker": worker_id, "sweep": sweep_id,
                           "point": index})

    def fail(self, worker_id: str, sweep_id: str, index: int,
             error: str) -> Dict[str, object]:
        return self._call("POST", "/fail",
                          {"worker": worker_id, "sweep": sweep_id,
                           "point": index, "error": error})

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def wait(self, sweep_id: str, timeout: float = 120.0,
             poll: float = 0.2) -> Dict[str, object]:
        """Block until the sweep leaves RUNNING (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(sweep_id)
            if status.get("state") != "RUNNING":
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"sweep {sweep_id} still RUNNING after {timeout:.0f}s: "
                    f"{ {k: status.get(k) for k in ('done', 'leased', 'pending')} }")
            time.sleep(poll)
