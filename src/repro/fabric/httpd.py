"""Minimal threaded JSON-over-HTTP server base for the fabric daemons.

The experiment service (PR 6) is asyncio because its handlers await job
state; the fabric's two daemons — store server and coordinator — are the
opposite shape: short blocking handlers serialized by a file lock or a
mutex. ``ThreadingHTTPServer`` fits that exactly and keeps each daemon a
few dozen lines.

An *app* is anything with ``handle(method, path, body) -> (status, payload)``
and an optional ``max_body_bytes`` attribute. The server owns everything
HTTP: request parsing, body-size limits, JSON encoding, and turning handler
exceptions into 500s (which clients treat as retryable).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

__all__ = ["JsonApp", "JsonHttpServer"]

Response = Tuple[int, Dict[str, object]]


class JsonApp:
    """Protocol stub: what :class:`JsonHttpServer` expects of an app."""

    #: Largest request body accepted, in bytes.
    max_body_bytes: int = 1 << 20

    def handle(self, method: str, path: str,
               body: Optional[Dict[str, object]]) -> Response:
        raise NotImplementedError


def _make_handler(app: JsonApp) -> type:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-fabric"

        def log_message(self, format: str, *args: object) -> None:
            pass  # daemons announce themselves once; per-request noise helps no one

        def _respond(self, status: int, payload: Dict[str, object]) -> None:
            data = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _read_body(self) -> Optional[Dict[str, object]]:
            length = int(self.headers.get("Content-Length") or 0)
            if length == 0:
                return None
            if length > app.max_body_bytes:
                raise _BodyError(
                    f"request body too large ({length} bytes; limit "
                    f"{app.max_body_bytes})")
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                raise _BodyError("request body is not valid JSON") from None
            if not isinstance(payload, dict):
                raise _BodyError("request body must be a JSON object")
            return payload

        def _dispatch(self, method: str) -> None:
            try:
                body = self._read_body()
            except _BodyError as error:
                self._respond(400, {"error": str(error)})
                return
            try:
                status, payload = app.handle(method, self.path, body)
            except Exception as error:  # noqa: BLE001 -- 500s are retryable
                self._respond(500, {"error": f"{type(error).__name__}: {error}"})
                return
            self._respond(status, payload)

        def do_GET(self) -> None:
            self._dispatch("GET")

        def do_PUT(self) -> None:
            self._dispatch("PUT")

        def do_POST(self) -> None:
            self._dispatch("POST")

        def do_DELETE(self) -> None:
            self._dispatch("DELETE")

    return Handler


class _BodyError(ValueError):
    """A request body defect the handler reports as a 400."""


class JsonHttpServer:
    """A threaded HTTP server bound at construction (ephemeral port OK)."""

    def __init__(self, app: JsonApp, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = app
        self._server = ThreadingHTTPServer((host, port), _make_handler(app))
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "JsonHttpServer":
        """Serve on a daemon thread (tests and embedded use)."""
        thread = threading.Thread(target=self._server.serve_forever,
                                  name=f"fabric-httpd-{self.port}",
                                  daemon=True)
        thread.start()
        self._thread = thread
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (CLI daemons)."""
        self._server.serve_forever()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
