"""Lease-based sweep coordination: claim, heartbeat, reclaim, complete.

The coordinator is the fabric's control plane, and it is deliberately
*disposable*: the content-addressed store is the only durable state. A
sweep here is just a validated :class:`JobRequest` exploded into per-size
work points; workers claim points under TTL leases, heartbeat to keep them,
and write results through the store. If a worker dies, its lease expires
and the point is handed to someone else; if the *coordinator* dies, a new
one is started and the sweep resubmitted — every point a worker already
finished is served from the store in milliseconds, so recovery costs only
the points genuinely in flight. Per-index seed derivation makes all of this
safe: any worker, any engine, any number of retries computes bit-identical
trials for a given point.

Lifecycle follows the pod create/status/delete pattern: ``register`` a
worker, ``claim`` work, ``heartbeat`` while executing, ``complete`` or
``fail`` when done. Reclaim is lazy — expired leases are swept at the top
of every claim/status call — so the coordinator needs no timer thread, and
an injectable clock makes every expiry scenario testable without sleeping.

Double execution is tolerated by design, never amplified: a ``complete``
for a point whose lease was reclaimed is accepted (the store already merged
the trials — rejecting the message would not un-run them), and one recorded
as done is answered ``stale``. The accounting invariant tests assert is
``attempts == 1 + reclaims + failures`` per point: no lost points, no
execution beyond reclaimed leases.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.service.requests import JobRequest

__all__ = ["Coordinator", "Sweep", "WorkPoint",
           "PENDING", "LEASED", "DONE", "RUNNING", "FAILED"]

# Point states.
PENDING = "PENDING"
LEASED = "LEASED"
DONE = "DONE"

# Sweep states (a sweep is RUNNING until every point is DONE, or FAILED
# once any point exhausts its attempt budget).
RUNNING = "RUNNING"
FAILED = "FAILED"


@dataclass
class WorkPoint:
    """One sweep point: a single (spec, n, config) batch a worker claims."""

    index: int
    population_size: int
    #: The point as a self-contained submission payload (``sizes=[n]``) —
    #: the worker rebuilds the exact :class:`JobRequest` from this, which
    #: is what guarantees its seeds match a serial run of the full sweep.
    payload: Dict[str, object]
    state: str = PENDING
    worker: Optional[str] = None
    lease_expires: float = 0.0
    #: Leases ever granted for this point (first claim included).
    attempts: int = 0
    #: Leases that expired and were handed to another worker.
    reclaims: int = 0
    #: Explicit failure reports (worker raised while executing).
    failures: int = 0
    completed_by: Optional[str] = None
    last_error: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "population_size": self.population_size,
            "state": self.state,
            "worker": self.worker,
            "attempts": self.attempts,
            "reclaims": self.reclaims,
            "failures": self.failures,
            "completed_by": self.completed_by,
            "last_error": self.last_error,
        }


@dataclass
class Sweep:
    """One submitted sweep: a request payload exploded into work points."""

    sweep_id: str
    payload: Dict[str, object]
    points: List[WorkPoint]
    state: str = RUNNING
    error: Optional[str] = None

    def counts(self) -> Dict[str, int]:
        return {
            "points": len(self.points),
            "done": sum(1 for p in self.points if p.state == DONE),
            "leased": sum(1 for p in self.points if p.state == LEASED),
            "pending": sum(1 for p in self.points if p.state == PENDING),
            "attempts": sum(p.attempts for p in self.points),
            "reclaims": sum(p.reclaims for p in self.points),
            "failures": sum(p.failures for p in self.points),
        }


@dataclass
class _Worker:
    worker_id: str
    meta: Dict[str, object] = field(default_factory=dict)


class Coordinator:
    """The lease state machine (pure; the HTTP facade is a thin wrapper).

    Everything runs under one mutex — claims are millisecond bookkeeping
    next to minutes of trial execution, so a single lock is the right
    trade. ``clock`` is injectable (monotonic seconds) so tests drive
    lease expiry without sleeping.
    """

    def __init__(self, lease_ttl: float = 15.0, max_attempts: int = 5,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self._clock = clock
        self._lock = threading.Lock()
        self._workers: Dict[str, _Worker] = {}
        self._sweeps: Dict[str, Sweep] = {}
        self._worker_seq = 0
        self._sweep_seq = 0

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def register(self, meta: Optional[Dict[str, object]] = None) -> str:
        """Admit a worker and name it (``worker-0001``, ...)."""
        with self._lock:
            self._worker_seq += 1
            worker_id = f"worker-{self._worker_seq:04d}"
            self._workers[worker_id] = _Worker(worker_id, dict(meta or {}))
            return worker_id

    # ------------------------------------------------------------------ #
    # Sweep submission / inspection
    # ------------------------------------------------------------------ #
    def submit(self, payload: object) -> Dict[str, object]:
        """Validate a submission payload and explode it into work points.

        Raises :class:`ValidationError` (HTTP 400) on any defect — the same
        eager checks the experiment service applies, so a sweep that could
        never run is refused before any worker touches it.
        """
        request = JobRequest.from_payload(payload)
        request.validate()
        described = request.describe()
        points = [
            WorkPoint(index=index, population_size=size,
                      payload=dict(described, sizes=[size]))
            for index, size in enumerate(request.sizes)
        ]
        with self._lock:
            self._sweep_seq += 1
            sweep_id = f"sweep-{self._sweep_seq:04d}"
            self._sweeps[sweep_id] = Sweep(sweep_id, described, points)
        return {"sweep": sweep_id, "points": len(points)}

    def sweeps(self) -> List[Dict[str, object]]:
        with self._lock:
            self._reclaim_expired(self._clock())
            return [
                {"sweep": sweep.sweep_id, "state": sweep.state,
                 **sweep.counts()}
                for sweep in self._sweeps.values()
            ]

    def sweep_status(self, sweep_id: str) -> Optional[Dict[str, object]]:
        """Full status of one sweep (``None`` for an unknown id)."""
        with self._lock:
            self._reclaim_expired(self._clock())
            sweep = self._sweeps.get(sweep_id)
            if sweep is None:
                return None
            return {
                "sweep": sweep.sweep_id,
                "state": sweep.state,
                "error": sweep.error,
                "request": dict(sweep.payload),
                **sweep.counts(),
                "point_detail": [point.as_dict() for point in sweep.points],
            }

    # ------------------------------------------------------------------ #
    # The lease protocol: claim / heartbeat / complete / fail
    # ------------------------------------------------------------------ #
    def claim(self, worker_id: str) -> Dict[str, object]:
        """Hand the worker a point under a fresh TTL lease.

        Responses (all HTTP 200 — these are protocol states, not errors):

        * ``{"status": "work", ...}`` — a point to execute, with its
          payload, lease TTL, and attempt number. Idempotent: a worker
          already holding an unexpired lease gets the *same* point back,
          so a claim whose response was dropped on the wire cannot
          double-lease.
        * ``{"status": "wait", "retry_after": s}`` — everything is leased
          out; poll again in ``s`` seconds (the soonest a lease can expire).
        * ``{"status": "idle"}`` — no runnable sweeps at all.
        * ``{"status": "unknown-worker"}`` — re-register (the coordinator
          restarted since this worker registered).
        """
        with self._lock:
            now = self._clock()
            self._reclaim_expired(now)
            if worker_id not in self._workers:
                return {"status": "unknown-worker"}
            # Idempotent re-claim: the retry of a dropped claim response
            # must land on the same lease, not a second one.
            for sweep in self._sweeps.values():
                for point in sweep.points:
                    if (point.state == LEASED and point.worker == worker_id
                            and point.lease_expires > now):
                        return self._work_response(sweep, point)
            soonest: Optional[float] = None
            any_running = False
            for sweep in self._sweeps.values():
                if sweep.state != RUNNING:
                    continue
                any_running = True
                for point in sweep.points:
                    if point.state == PENDING:
                        point.state = LEASED
                        point.worker = worker_id
                        point.lease_expires = now + self.lease_ttl
                        point.attempts += 1
                        return self._work_response(sweep, point)
                    if point.state == LEASED:
                        remaining = max(0.0, point.lease_expires - now)
                        if soonest is None or remaining < soonest:
                            soonest = remaining
            if any_running and soonest is not None:
                return {"status": "wait",
                        "retry_after": round(soonest, 3)}
            return {"status": "idle"}

    def heartbeat(self, worker_id: str, sweep_id: str,
                  index: int) -> Dict[str, object]:
        """Extend the lease on a point the worker is still executing.

        ``{"status": "ok"}`` with a fresh expiry, or ``{"status": "lost"}``
        when the lease is gone (expired and reclaimed, point finished by
        someone else, coordinator restarted). A worker that hears ``lost``
        keeps executing — its eventual ``complete`` is still accepted —
        but learns not to count on the lease.
        """
        with self._lock:
            now = self._clock()
            self._reclaim_expired(now)
            point = self._find_point(sweep_id, index)
            if (point is None or point.state != LEASED
                    or point.worker != worker_id):
                return {"status": "lost"}
            point.lease_expires = now + self.lease_ttl
            return {"status": "ok", "lease_ttl": self.lease_ttl}

    def complete(self, worker_id: str, sweep_id: str,
                 index: int) -> Dict[str, object]:
        """Record a point as done (the trials are already in the store).

        Accepted from *any* worker whose execution finished — even one
        whose lease was reclaimed: the store merged its write-back
        never-shrink, so refusing the message would misstate reality. A
        point already done answers ``stale`` (pure acknowledgement).
        """
        with self._lock:
            self._reclaim_expired(self._clock())
            sweep = self._sweeps.get(sweep_id)
            point = self._find_point(sweep_id, index)
            if sweep is None or point is None:
                return {"status": "unknown"}
            if point.state == DONE:
                return {"status": "stale"}
            point.state = DONE
            point.worker = None
            point.completed_by = worker_id
            if all(p.state == DONE for p in sweep.points):
                sweep.state = DONE
            return {"status": "ok", "sweep_state": sweep.state}

    def fail(self, worker_id: str, sweep_id: str, index: int,
             error: str) -> Dict[str, object]:
        """A worker's explicit failure report: requeue or give up.

        The point returns to ``PENDING`` for another attempt unless its
        attempt budget (``max_attempts`` leases) is exhausted, in which
        case the whole sweep is marked ``FAILED`` with the last error —
        a deterministic bug would otherwise requeue forever.
        """
        with self._lock:
            self._reclaim_expired(self._clock())
            sweep = self._sweeps.get(sweep_id)
            point = self._find_point(sweep_id, index)
            if sweep is None or point is None:
                return {"status": "unknown"}
            if point.state == DONE:
                return {"status": "stale"}
            point.failures += 1
            point.last_error = error
            point.worker = None
            if point.attempts >= self.max_attempts:
                sweep.state = FAILED
                sweep.error = (
                    f"point {index} (n={point.population_size}) failed "
                    f"after {point.attempts} attempt(s): {error}")
                return {"status": "gave-up", "sweep_state": sweep.state}
            point.state = PENDING
            return {"status": "requeued"}

    # ------------------------------------------------------------------ #
    # Internals (call with the lock held)
    # ------------------------------------------------------------------ #
    def _work_response(self, sweep: Sweep,
                       point: WorkPoint) -> Dict[str, object]:
        return {
            "status": "work",
            "sweep": sweep.sweep_id,
            "point": point.index,
            "lease_ttl": self.lease_ttl,
            "attempt": point.attempts,
            "payload": dict(point.payload),
        }

    def _find_point(self, sweep_id: str, index: int) -> Optional[WorkPoint]:
        sweep = self._sweeps.get(sweep_id)
        if sweep is None or not isinstance(index, int):
            return None
        if not 0 <= index < len(sweep.points):
            return None
        return sweep.points[index]

    def _reclaim_expired(self, now: float) -> None:
        """Return expired leases to the pool (lazy, every entry point).

        A reclaimed point whose lease budget is spent fails the sweep —
        same reasoning as :meth:`fail`: a point that keeps killing its
        workers should stop the sweep with a diagnostic, not spin.
        """
        for sweep in self._sweeps.values():
            if sweep.state != RUNNING:
                continue
            for point in sweep.points:
                if point.state != LEASED or point.lease_expires > now:
                    continue
                point.reclaims += 1
                point.worker = None
                if point.attempts >= self.max_attempts:
                    sweep.state = FAILED
                    sweep.error = (
                        f"point {point.index} (n={point.population_size}) "
                        f"lease expired {point.reclaims} time(s) and the "
                        f"attempt budget ({self.max_attempts}) is spent")
                    point.state = PENDING
                    continue
                point.state = PENDING
