"""The worker loop: claim a point, heartbeat, execute, report, repeat.

``repro-ssle work`` runs this against a coordinator (and, in any real
deployment, a shared store — without one, each worker's results die with
its process and reclaimed points recompute from scratch). The loop is
deliberately crash-silent: a worker that dies mid-point performs *no*
cleanup, because none is needed — its lease expires, the coordinator hands
the point to someone else, and the store's never-shrink merge absorbs any
partial write-back the dying worker managed.

Determinism: the worker rebuilds each point's :class:`JobRequest` from the
coordinator's payload — the same payload shape the experiment service
round-trips — and derives trial tasks with :func:`batch_tasks`, so its
seeds are exactly those a serial single-machine sweep derives for that
(spec, n, config). Which worker runs a point, how many times it is
retried, and in what order points finish cannot change a single bit of the
reassembled sweep.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.api.executor import batch_tasks, run_trials
from repro.fabric.client import FabricClient, FabricError
from repro.fabric.retry import RetryPolicy, call_with_retry
from repro.fabric.transport import TransportError
from repro.service.requests import JobRequest

__all__ = ["work_loop"]

Announce = Callable[[str], None]


def _heartbeat_loop(client: FabricClient, worker_id: str, sweep_id: str,
                    index: int, interval: float,
                    stop: threading.Event) -> None:
    """Keep the lease alive while the point executes (daemon thread).

    Transport errors are swallowed — a missed heartbeat at worst lets the
    lease lapse, and the coordinator tolerates the resulting double
    execution by design. A ``lost`` answer also just stops the beats: the
    executing thread finishes and reports ``complete`` regardless.
    """
    while not stop.wait(interval):
        try:
            answer = client.heartbeat(worker_id, sweep_id, index)
        except (TransportError, FabricError):
            continue
        if answer.get("status") == "lost":
            return


def work_loop(coordinator: str,
              store=None,
              workers: Optional[int] = None,
              poll: float = 0.5,
              drain: bool = False,
              max_points: Optional[int] = None,
              announce: Optional[Announce] = None,
              policy: Optional[RetryPolicy] = None) -> Dict[str, object]:
    """Serve a coordinator until idle (``drain``) or forever; returns stats.

    ``store`` is any results-store implementation (local
    :class:`ResultsStore` or :class:`RemoteStore`); ``workers`` sizes the
    per-point process pool (``None`` = in-process). ``drain=True`` exits
    when the coordinator reports no runnable sweeps — the CI/batch mode;
    without it the loop polls forever — the daemon mode. ``max_points``
    bounds how many points this worker executes (tests).
    """
    client = FabricClient(coordinator, policy=policy)
    say = announce or (lambda message: None)

    def register() -> str:
        worker_id = call_with_retry(
            lambda: client.register({"workers": workers or 0}),
            policy=client.policy, retry_on=(TransportError,))
        say(f"worker {worker_id} serving {coordinator}")
        return worker_id

    worker_id = register()
    stats: Dict[str, object] = {"worker": worker_id, "points": 0,
                                "failures": 0, "stale": 0}
    while True:
        if max_points is not None and stats["points"] >= max_points:
            return stats
        try:
            claim = client.claim(worker_id)
        except TransportError:
            # Coordinator gone. In drain mode that ends the engagement; a
            # daemon keeps polling — coordinators are disposable and a new
            # one may take over the same address.
            if drain:
                return stats
            time.sleep(poll)
            continue
        status = claim.get("status")
        if status == "unknown-worker":
            # The coordinator restarted and lost our registration (its
            # only non-reconstructible state). Re-register and carry on.
            worker_id = register()
            stats["worker"] = worker_id
            continue
        if status == "idle":
            if drain:
                return stats
            time.sleep(poll)
            continue
        if status == "wait":
            retry_after = claim.get("retry_after")
            delay = retry_after if isinstance(retry_after, (int, float)) else poll
            time.sleep(max(0.05, min(float(delay), poll)))
            continue
        if status != "work":
            time.sleep(poll)
            continue

        sweep_id = str(claim["sweep"])
        index = int(claim["point"])  # type: ignore[arg-type]
        lease_ttl = float(claim.get("lease_ttl") or 15.0)  # type: ignore[arg-type]
        stop = threading.Event()
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(client, worker_id, sweep_id, index,
                  max(0.2, lease_ttl / 3.0), stop),
            name=f"heartbeat-{sweep_id}-{index}", daemon=True)
        beat.start()
        try:
            request = JobRequest.from_payload(claim["payload"])
            (batch,) = request.batch_requests()
            tasks = batch_tasks(batch)
            say(f"worker {worker_id} executing {sweep_id} point {index} "
                f"({batch.spec_name} n={batch.population_size}, "
                f"{len(tasks)} trials)")
            run_trials(tasks, workers=workers, store=store)
        except Exception as error:  # noqa: BLE001 -- reported, never fatal
            stop.set()
            beat.join(timeout=2.0)
            stats["failures"] = int(stats["failures"]) + 1
            say(f"worker {worker_id} failed {sweep_id} point {index}: {error}")
            try:
                client.fail(worker_id, sweep_id, index,
                            f"{type(error).__name__}: {error}")
            except (TransportError, FabricError):
                pass  # the lease will expire on its own
            continue
        stop.set()
        beat.join(timeout=2.0)
        stats["points"] = int(stats["points"]) + 1
        try:
            answer = client.complete(worker_id, sweep_id, index)
            if answer.get("status") == "stale":
                stats["stale"] = int(stats["stale"]) + 1
        except (TransportError, FabricError):
            # The trials are safe in the store; if this message is lost the
            # lease expires and whoever re-runs the point is served from
            # cache in milliseconds.
            pass
        say(f"worker {worker_id} completed {sweep_id} point {index}")
