"""Bounded retry with exponential backoff and jitter — the fabric's one policy.

Every remote call the fabric makes (store reads/writes, coordinator claims,
service submissions) goes through the same policy: a fixed number of
attempts, exponentially growing delays capped at ``max_delay``, a per-attempt
timeout, and multiplicative jitter so a fleet of workers retrying the same
dead server does not stampede it in lockstep.

The policy is deliberately *not* part of any experiment's identity: jitter
draws from a module-local RNG that never touches the seed-derivation chains,
and no retry decision can change what a trial computes — only whether a
network call is attempted again.
"""

from __future__ import annotations

import random  # repro: allow[REP002] -- jitter only; never feeds trial seeds
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

__all__ = ["RetryPolicy", "call_with_retry"]

T = TypeVar("T")

#: Jitter source. Isolated from ``repro.core.rng`` on purpose: backoff delays
#: must never be reproducible state, and reseeding experiments must never
#: perturb them.
_jitter_rng = random.Random()  # repro: allow[REP002]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try a remote call, and how long to wait in between.

    ``retries`` counts *additional* attempts after the first, so
    ``retries=0`` means exactly one attempt (the opt-out). ``timeout`` is
    the per-attempt socket timeout callers should apply to each try, not a
    total budget.
    """

    retries: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    timeout: float = 10.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    @property
    def attempts(self) -> int:
        """Total attempts, first try included."""
        return self.retries + 1

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered.

        The deterministic envelope is ``base_delay * 2**(attempt-1)`` capped
        at ``max_delay``; jitter shrinks each delay by up to ``jitter``
        (multiplicatively), which de-synchronizes retrying workers without
        ever exceeding the envelope.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        if self.jitter:
            delay *= 1.0 - self.jitter * _jitter_rng.random()
        return delay


def call_with_retry(
    operation: Callable[[], T],
    *,
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Run ``operation`` under ``policy``, re-raising the final failure.

    Only exceptions in ``retry_on`` are retried; anything else propagates
    immediately. After the last attempt the *original* exception is
    re-raised unwrapped, so callers' existing ``except`` clauses keep
    working. ``on_retry(attempt, error)`` fires before each backoff sleep —
    use it for diagnostics, not control flow.
    """
    last_error: Optional[BaseException] = None
    for attempt in range(1, policy.attempts + 1):
        try:
            return operation()
        except retry_on as error:
            last_error = error
            if attempt >= policy.attempts:
                break
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(policy.backoff(attempt))
    assert last_error is not None
    raise last_error
