"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch every failure raised by this package with a single ``except`` clause
while still being able to distinguish configuration problems from protocol
violations or simulation misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class InvalidParameterError(ReproError, ValueError):
    """A protocol or simulation parameter is outside its legal range.

    Examples: a ring of fewer than two agents, ``psi`` smaller than the
    paper's minimum of two, a negative step budget.
    """


class InvalidStateError(ReproError, ValueError):
    """An agent state violates the declared state space of its protocol.

    Protocols validate states when asked (e.g. in :meth:`Protocol.validate`),
    and adversarial-configuration builders use this error to reject states
    that could never occur even in an arbitrary initial configuration.
    """


class InvalidConfigurationError(ReproError, ValueError):
    """A configuration is malformed (wrong size, wrong state types)."""


class ScheduleExhaustedError(ReproError, RuntimeError):
    """A deterministic scheduler ran out of scheduled interactions.

    Raised by :class:`repro.core.scheduler.SequenceScheduler` when the
    simulation requests more steps than the sequence contains.
    """


class ConvergenceError(ReproError, RuntimeError):
    """A run did not reach the requested predicate within its step budget.

    Carries the number of steps executed so callers can report partial
    progress.
    """

    def __init__(self, message: str, steps: int) -> None:
        super().__init__(message)
        self.steps = steps


class StateSpaceError(ReproError, RuntimeError):
    """A protocol's state space cannot be enumerated into a transition table.

    Raised by :class:`repro.core.encoding.StateEncoder` when the reachable
    state space exceeds the enumeration cap (or the protocol's declared
    ``state_space_size`` bound already does).  The batched engine treats this
    as "fall back to the step-by-step simulator", so the error is a routine
    control signal for large-state protocols such as ``P_PL``.
    """


class TopologyError(ReproError, ValueError):
    """A population graph does not satisfy the requirements of a protocol.

    For instance, running the directed-ring protocol ``P_PL`` on an
    undirected ring or on a complete graph.
    """
