"""Execution tracing: record interactions and configuration snapshots.

Tracing is optional — the convergence experiments run millions of steps and
must not pay for it — but it is invaluable for debugging protocol behaviour,
for the worked examples, and for rendering the paper's Figure 2 (the token
trajectory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, Sequence, TypeVar

from repro.core.configuration import Configuration
from repro.core.simulator import Simulation

StateT = TypeVar("StateT")


@dataclass(frozen=True)
class InteractionRecord:
    """One traced interaction."""

    step: int
    initiator: int
    responder: int


@dataclass
class ExecutionTrace(Generic[StateT]):
    """Sequence of interaction records plus optional configuration snapshots."""

    interactions: List[InteractionRecord] = field(default_factory=list)
    snapshots: List[Configuration[StateT]] = field(default_factory=list)
    snapshot_steps: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.interactions)

    def arcs(self) -> List[tuple]:
        """The traced interactions as (initiator, responder) pairs."""
        return [(record.initiator, record.responder) for record in self.interactions]

    def last_snapshot(self) -> Optional[Configuration[StateT]]:
        """The most recent configuration snapshot, if any."""
        return self.snapshots[-1] if self.snapshots else None


class TraceRecorder(Generic[StateT]):
    """Observer that appends interactions (and periodic snapshots) to a trace.

    Parameters
    ----------
    simulation:
        The simulation to attach to; the recorder registers itself as an
        observer immediately.
    snapshot_interval:
        When positive, take a full configuration snapshot every that many
        steps.  Zero disables snapshots (interactions are still recorded).
    max_interactions:
        Safety valve: stop recording interactions (snapshots continue) after
        this many records to bound memory on long runs.
    """

    def __init__(
        self,
        simulation: Simulation[StateT],
        snapshot_interval: int = 0,
        max_interactions: int = 1_000_000,
    ) -> None:
        if snapshot_interval < 0:
            raise ValueError("snapshot_interval must be >= 0")
        self._simulation = simulation
        self._snapshot_interval = snapshot_interval
        self._max_interactions = max_interactions
        self.trace: ExecutionTrace[StateT] = ExecutionTrace()
        simulation.add_observer(self._observe)

    def _observe(self, step: int, initiator: int, responder: int,
                 states: Sequence[StateT]) -> None:
        if len(self.trace.interactions) < self._max_interactions:
            self.trace.interactions.append(InteractionRecord(step, initiator, responder))
        if self._snapshot_interval and step % self._snapshot_interval == 0:
            self.trace.snapshots.append(Configuration(list(states)))
            self.trace.snapshot_steps.append(step)


class FieldWatcher(Generic[StateT]):
    """Observer recording the evolution of one derived quantity.

    ``extract`` is called on the full state list after every interaction; the
    value is appended whenever it differs from the previously recorded one.
    Used, for example, to track the position of a token or the number of
    leaders across an execution.
    """

    def __init__(self, simulation: Simulation[StateT],
                 extract: Callable[[Sequence[StateT]], object]) -> None:
        self._extract = extract
        self.history: List[tuple] = []
        simulation.add_observer(self._observe)

    def _observe(self, step: int, initiator: int, responder: int,
                 states: Sequence[StateT]) -> None:
        value = self._extract(states)
        if not self.history or self.history[-1][1] != value:
            self.history.append((step, value))

    def values(self) -> List[object]:
        """The recorded values, without their step numbers."""
        return [value for _, value in self.history]
