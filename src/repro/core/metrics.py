"""Simulation metrics: step counters, interaction counts, leader trajectories.

The paper measures time in *steps* (scheduler ticks).  Parallel time (steps
divided by ``n``) is also reported because much of the population-protocol
literature uses it; both are exposed here so experiment reports can show
either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class StepMetrics:
    """Counters accumulated while a simulation runs."""

    #: Total scheduler ticks executed.
    steps: int = 0
    #: Interactions per agent (an agent participates in a step with prob. deg/|E|).
    interactions_per_agent: Dict[int, int] = field(default_factory=dict)
    #: Number of steps in which the transition actually changed some state.
    effective_steps: int = 0

    def record(self, initiator: int, responder: int, changed: bool) -> None:
        """Record one executed interaction."""
        self.steps += 1
        self.interactions_per_agent[initiator] = self.interactions_per_agent.get(initiator, 0) + 1
        self.interactions_per_agent[responder] = self.interactions_per_agent.get(responder, 0) + 1
        if changed:
            self.effective_steps += 1

    def parallel_time(self, population_size: int) -> float:
        """Steps divided by ``n`` — the conventional parallel-time measure."""
        return self.steps / population_size

    def busiest_agent(self) -> Optional[Tuple[int, int]]:
        """``(agent, interaction count)`` for the most active agent, if any."""
        if not self.interactions_per_agent:
            return None
        agent = max(self.interactions_per_agent, key=self.interactions_per_agent.get)
        return agent, self.interactions_per_agent[agent]


@dataclass
class LeaderTrajectory:
    """Time series of the leader count, sampled at a fixed interval.

    Used by the convergence experiments to show how the number of leaders
    evolves (creation when absent, elimination when plural).
    """

    sample_interval: int
    samples: List[Tuple[int, int]] = field(default_factory=list)

    def maybe_sample(self, step: int, leader_count: int) -> None:
        """Record ``(step, leader_count)`` once per crossed sampling-grid point.

        When the simulation advances one step at a time this records exactly
        at the grid points (multiples of ``sample_interval``).  Under burst
        stepping (``run_until`` with ``check_interval > 1``, or the batched
        engine) a burst may jump over a grid point entirely; the first call
        after the jump records the current count instead of silently skipping
        the grid point.  At most one sample is taken per call, so a burst
        spanning several grid points contributes one (coarser) sample.
        """
        if self.samples:
            last_step = self.samples[-1][0]
            next_grid = (last_step // self.sample_interval + 1) * self.sample_interval
            if step < next_grid:
                return
        self.samples.append((step, leader_count))

    def final_leader_count(self) -> Optional[int]:
        """Leader count at the last sample, if any sample was taken."""
        if not self.samples:
            return None
        return self.samples[-1][1]

    def first_step_with_unique_leader(self) -> Optional[int]:
        """First sampled step at which exactly one leader was present."""
        for step, count in self.samples:
            if count == 1:
                return step
        return None
