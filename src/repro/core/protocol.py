"""Protocol abstraction of the population-protocol model (Section 2 of the paper).

A protocol ``P = (Q, Y, T, pi_out)`` consists of a state set ``Q``, an output
alphabet ``Y``, a transition function ``T : Q x Q -> Q x Q`` applied to the
(initiator, responder) pair of an interaction, and an output function
``pi_out : Q -> Y``.

This module defines the abstract :class:`Protocol` interface every protocol in
this package implements, plus the standard leader-election output alphabet.

Design notes
------------
* Population protocols are deterministic: all randomness comes from the
  uniformly random scheduler.  Some substitute protocols in this repository
  (the two-hop coloring substrate of Section 5) extract randomness from the
  scheduler by using the initiator/responder role as a fair coin, exactly as
  the paper's ``EliminateLeaders()`` does, so the :meth:`Protocol.transition`
  signature stays purely deterministic.
* Self-stabilizing protocols have no distinguished initial state: any mapping
  of agents to states is a legal starting configuration.  Protocols therefore
  expose :meth:`Protocol.random_state` so adversarial-configuration generators
  can draw arbitrary states uniformly from (a superset of) the reachable state
  space.
"""

from __future__ import annotations

import abc
from typing import Generic, Hashable, Iterable, Tuple, TypeVar

from repro.core.errors import InvalidStateError
from repro.core.rng import RandomSource

#: Output symbol of a leader agent.
LEADER_OUTPUT = "L"
#: Output symbol of a follower (non-leader) agent.
FOLLOWER_OUTPUT = "F"

StateT = TypeVar("StateT", bound=Hashable)


class Protocol(abc.ABC, Generic[StateT]):
    """Abstract population protocol ``P = (Q, Y, T, pi_out)``.

    Subclasses implement the transition function, the output function, state
    validation and (optionally) an estimate of the size of the state space
    ``|Q|`` used by the state-complexity experiments.
    """

    #: Human readable protocol name used in experiment reports.
    name: str = "protocol"

    # ------------------------------------------------------------------ #
    # Core interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def transition(self, initiator: StateT, responder: StateT) -> Tuple[StateT, StateT]:
        """Apply the transition function ``T`` to one interaction.

        Parameters
        ----------
        initiator:
            State of the initiator (the paper's ``l``, the left agent on a
            directed ring).
        responder:
            State of the responder (the paper's ``r``, the right agent).

        Returns
        -------
        tuple
            The pair of successor states ``(initiator', responder')``.  The
            returned objects must not alias the inputs if the state type is
            mutable; protocols in this package return fresh objects.
        """

    @abc.abstractmethod
    def output(self, state: StateT) -> str:
        """Return ``pi_out(state)``, e.g. ``"L"`` or ``"F"`` for SS-LE."""

    @abc.abstractmethod
    def random_state(self, rng: RandomSource) -> StateT:
        """Draw an arbitrary legal state, used to build adversarial starts."""

    # ------------------------------------------------------------------ #
    # Optional interface with sensible defaults
    # ------------------------------------------------------------------ #
    def validate(self, state: StateT) -> None:
        """Raise :class:`InvalidStateError` if ``state`` is not in ``Q``.

        The default implementation accepts everything; protocols with a
        structured state space override it.
        """

    def state_space_size(self) -> int:
        """Upper bound on ``|Q|`` (number of per-agent states).

        Used by the Table-1 state-complexity experiment.  Protocols that do
        not implement a bound raise :class:`NotImplementedError`.
        """
        raise NotImplementedError(f"{self.name} does not report a state-space bound")

    def canonical_states(self) -> Iterable[StateT]:
        """Yield a small set of representative states (used by tests).

        The default yields nothing; protocols may override for convenience.
        """
        return ()

    # ------------------------------------------------------------------ #
    # Convenience helpers
    # ------------------------------------------------------------------ #
    def is_leader(self, state: StateT) -> bool:
        """True when ``pi_out(state)`` is the leader symbol."""
        return self.output(state) == LEADER_OUTPUT

    def require_valid(self, state: StateT) -> StateT:
        """Validate ``state`` and return it (fluent helper for builders)."""
        self.validate(state)
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class LeaderElectionProtocol(Protocol[StateT]):
    """Base class for protocols whose output alphabet is ``{L, F}``.

    Adds helpers shared by every leader-election protocol in the package:
    counting leaders in a configuration and the default leader output
    implementation driven by :meth:`leader_flag`.
    """

    @abc.abstractmethod
    def leader_flag(self, state: StateT) -> bool:
        """Return True when the agent with this state is a leader."""

    def output(self, state: StateT) -> str:
        return LEADER_OUTPUT if self.leader_flag(state) else FOLLOWER_OUTPUT

    def count_leaders(self, states: Iterable[StateT]) -> int:
        """Number of leader agents among ``states``."""
        return sum(1 for state in states if self.leader_flag(state))


def require_in_range(name: str, value: int, low: int, high: int) -> None:
    """Validate that ``low <= value <= high`` else raise :class:`InvalidStateError`.

    Shared by the structured state validators of the concrete protocols.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise InvalidStateError(f"{name} must be an int, got {value!r}")
    if not low <= value <= high:
        raise InvalidStateError(f"{name}={value} outside [{low}, {high}]")
