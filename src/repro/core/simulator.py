"""The simulation engine: executes a protocol under a scheduler.

An execution ``Xi_P(C_0, Gamma) = C_0, C_1, ...`` applies the transition
function to the arc the scheduler picks at each step (Section 2).

:class:`Simulation` keeps a mutable working copy of the agent states for
speed (the convergence experiments run millions of interactions) and exposes
immutable :class:`~repro.core.configuration.Configuration` snapshots on
demand.  Periodic predicates ("has the population reached a safe
configuration?") are evaluated through :meth:`Simulation.run_until`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, Sequence, TypeVar

from repro.core.configuration import Configuration
from repro.core.errors import ConvergenceError, InvalidConfigurationError, ScheduleExhaustedError
from repro.core.metrics import StepMetrics
from repro.core.protocol import Protocol
from repro.core.scheduler import Scheduler, UniformRandomScheduler
from repro.topology.graph import Population

StateT = TypeVar("StateT")

#: Predicate over the list of agent states, evaluated periodically by run_until.
StatePredicate = Callable[[Sequence[StateT]], bool]
#: Observer invoked after every interaction: (step, initiator, responder, states).
InteractionObserver = Callable[[int, int, int, Sequence[StateT]], None]

#: Default ceiling of the geometric check-interval backoff (see
#: :func:`resolve_check_cap`): long pre-convergence phases stop paying a
#: predicate decode every ``check_interval`` steps, while the worst-case
#: overshoot past the true hitting time stays bounded.
DEFAULT_CHECK_INTERVAL_CAP = 65_536


def resolve_check_cap(check_interval: int, check_backoff: bool,
                      check_interval_cap: Optional[int]) -> int:
    """Validate and resolve the burst ceiling for ``run_until``.

    Shared by every engine so the burst schedule — and therefore the exact
    number of scheduler draws between predicate checks — is identical across
    engines for the same arguments, keeping cross-engine step counts
    bit-identical whether backoff is on or off.
    """
    if check_interval < 1:
        raise ValueError(f"check_interval must be positive, got {check_interval}")
    if not check_backoff:
        return check_interval
    if check_interval_cap is None:
        return max(check_interval, DEFAULT_CHECK_INTERVAL_CAP)
    if check_interval_cap < check_interval:
        raise ValueError(
            f"check_interval_cap must be >= check_interval "
            f"({check_interval}), got {check_interval_cap}"
        )
    return check_interval_cap


@dataclass
class RunResult(Generic[StateT]):
    """Outcome of :meth:`Simulation.run_until`."""

    #: True when the stop predicate held before the step budget ran out.
    satisfied: bool
    #: Total number of steps executed by this call.
    steps: int
    #: The configuration at the end of the run.
    configuration: Configuration[StateT]

    def require_satisfied(self) -> "RunResult[StateT]":
        """Raise :class:`ConvergenceError` unless the predicate was reached."""
        if not self.satisfied:
            raise ConvergenceError(
                f"predicate not reached within {self.steps} steps", self.steps
            )
        return self


class Simulation(Generic[StateT]):
    """Executes one protocol on one population under one scheduler."""

    def __init__(
        self,
        protocol: Protocol[StateT],
        population: Population,
        initial: Configuration[StateT],
        scheduler: Optional[Scheduler] = None,
        rng: "int | None" = None,
    ) -> None:
        if len(initial) != population.size:
            raise InvalidConfigurationError(
                f"configuration has {len(initial)} agents but the population has "
                f"{population.size}"
            )
        # Protocol and population are shared immutable structure; observers
        # are attachments of the *driver*, not of the simulated run, and
        # deliberately survive a restore un-rewound.
        self._protocol = protocol  # repro: allow[REP006]
        self._population = population  # repro: allow[REP006]
        self._states: List[StateT] = initial.states()
        self._scheduler = scheduler or UniformRandomScheduler(population, rng)
        self._metrics = StepMetrics()
        self._observers: List[InteractionObserver] = []  # repro: allow[REP006]
        self._total_steps = 0

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def protocol(self) -> Protocol[StateT]:
        """The protocol being executed."""
        return self._protocol

    @property
    def population(self) -> Population:
        """The population graph."""
        return self._population

    @property
    def steps(self) -> int:
        """Total number of steps executed so far."""
        return self._total_steps

    @property
    def metrics(self) -> StepMetrics:
        """Accumulated step metrics."""
        return self._metrics

    def state_of(self, agent: int) -> StateT:
        """Current state of one agent; out-of-range indices raise ``IndexError``."""
        if not 0 <= agent < len(self._states):
            raise IndexError(
                f"agent {agent} out of range for a population of {len(self._states)}"
            )
        return self._states[agent]

    def states(self) -> List[StateT]:
        """The live (mutable) list of agent states.

        Callers must treat the returned list as read-only; it is exposed
        without copying because safety predicates are evaluated every few
        steps during long convergence runs.
        """
        return self._states

    def configuration(self) -> Configuration[StateT]:
        """Immutable snapshot of the current configuration."""
        return Configuration(list(self._states))

    def leader_count(self) -> int:
        """Number of agents currently outputting the leader symbol."""
        return sum(1 for state in self._states if self._protocol.is_leader(state))

    def add_observer(self, observer: InteractionObserver) -> None:
        """Register a callback invoked after every interaction."""
        self._observers.append(observer)

    # ------------------------------------------------------------------ #
    # State capture (the engine snapshot/restore contract)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Capture the full execution state as an opaque mapping.

        The snapshot covers agent states, the scheduler's stream position,
        and every counter, so ``snapshot -> restore -> run`` is bit-identical
        to an uninterrupted run.  Together with the fact that repeated
        :meth:`run_until` calls resume where the previous segment stopped,
        this is what lets phased scenarios replay any segment on any engine.

        States are deep-copied in both directions: protocols with mutable
        state objects (``PPLState`` and friends) update them in place, so a
        shallow capture would be silently corrupted by further execution.
        """
        metrics = self._metrics
        return {
            "states": copy.deepcopy(self._states),
            "scheduler": self._scheduler.getstate(),
            "total_steps": self._total_steps,
            "metrics": (metrics.steps, dict(metrics.interactions_per_agent),
                        metrics.effective_steps),
        }

    def restore(self, snapshot: dict) -> None:
        """Rewind to a state captured by :meth:`snapshot` (same simulation)."""
        self._states = copy.deepcopy(snapshot["states"])
        self._scheduler.setstate(snapshot["scheduler"])
        self._total_steps = snapshot["total_steps"]
        steps, interactions, effective = snapshot["metrics"]
        self._metrics = StepMetrics(
            steps=steps,
            interactions_per_agent=dict(interactions),
            effective_steps=effective,
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute one interaction; return True when some state changed."""
        initiator, responder = self._scheduler.next_arc()
        before_initiator = self._states[initiator]
        before_responder = self._states[responder]
        after_initiator, after_responder = self._protocol.transition(
            before_initiator, before_responder
        )
        changed = (after_initiator != before_initiator) or (after_responder != before_responder)
        self._states[initiator] = after_initiator
        self._states[responder] = after_responder
        self._total_steps += 1
        self._metrics.record(initiator, responder, changed)
        for observer in self._observers:
            observer(self._total_steps, initiator, responder, self._states)
        return changed

    def run(self, steps: int) -> Configuration[StateT]:
        """Execute exactly ``steps`` interactions and return the final snapshot."""
        for _ in range(steps):
            self.step()
        return self.configuration()

    def run_sequence(self) -> Configuration[StateT]:
        """Run until the (deterministic) scheduler is exhausted.

        Only meaningful with a :class:`~repro.core.scheduler.SequenceScheduler`
        or an interleaved scheduler whose prefix should be drained.
        """
        try:
            while True:
                self.step()
        except ScheduleExhaustedError:
            pass
        return self.configuration()

    def run_until(
        self,
        predicate: StatePredicate,
        max_steps: int,
        check_interval: int = 1,
        check_backoff: bool = False,
        check_interval_cap: Optional[int] = None,
    ) -> RunResult[StateT]:
        """Run until ``predicate(states)`` holds, checking every ``check_interval`` steps.

        The predicate is evaluated on the current (live) state list before the
        first step and then after every ``check_interval`` steps, so the
        reported step count overshoots the true hitting time by at most
        ``check_interval - 1`` steps.

        ``check_backoff=True`` doubles the interval after every unsatisfied
        check, up to ``check_interval_cap`` (default
        :data:`DEFAULT_CHECK_INTERVAL_CAP`), trading overshoot (bounded by
        the cap) for fewer predicate evaluations during long pre-convergence
        phases.  The backoff schedule is identical across engines, so step
        counts still agree engine-to-engine for the same arc stream.
        """
        if max_steps < 0:
            raise ValueError(f"max_steps must be non-negative, got {max_steps}")
        cap = resolve_check_cap(check_interval, check_backoff, check_interval_cap)
        if predicate(self._states):
            return RunResult(True, 0, self.configuration())
        executed = 0
        interval = check_interval
        while executed < max_steps:
            burst = min(interval, max_steps - executed)
            for _ in range(burst):
                self.step()
            executed += burst
            if predicate(self._states):
                return RunResult(True, executed, self.configuration())
            if check_backoff and interval < cap:
                interval = min(interval * 2, cap)
        return RunResult(False, executed, self.configuration())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Simulation protocol={self._protocol.name!r} "
            f"population={self._population.name!r} steps={self._total_steps}>"
        )
