"""Configurations: mappings from agents to protocol states.

A configuration ``C : V -> Q`` assigns a state to every agent (Section 2).
:class:`Configuration` is an immutable-by-convention container indexed by
agent position; the simulator keeps its own mutable working copy and exposes
snapshots as :class:`Configuration` objects.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, List, Sequence, TypeVar

from repro.core.errors import InvalidConfigurationError
from repro.core.protocol import Protocol

StateT = TypeVar("StateT")


class Configuration(Generic[StateT]):
    """Snapshot of all agent states at one point of an execution."""

    __slots__ = ("_states",)

    def __init__(self, states: Sequence[StateT]) -> None:
        if len(states) < 2:
            raise InvalidConfigurationError(
                f"a configuration needs at least 2 agents, got {len(states)}"
            )
        self._states: List[StateT] = list(states)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._states)

    def __getitem__(self, agent: int) -> StateT:
        return self._states[agent % len(self._states)]

    def __iter__(self) -> Iterator[StateT]:
        return iter(self._states)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._states == other._states

    def __hash__(self) -> int:
        # In-process dict/set membership only — never a seed or a stored
        # key, so the per-process salt of builtin hash() is harmless here.
        return hash(tuple(self._states))  # repro: allow[REP001]

    # ------------------------------------------------------------------ #
    # Functional updates
    # ------------------------------------------------------------------ #
    def states(self) -> List[StateT]:
        """A fresh list of all agent states (callers may mutate the list)."""
        return list(self._states)

    def replace(self, agent: int, state: StateT) -> "Configuration[StateT]":
        """Return a copy of the configuration with one agent's state replaced."""
        states = list(self._states)
        states[agent % len(states)] = state
        return Configuration(states)

    def map(self, transform: Callable[[int, StateT], StateT]) -> "Configuration[StateT]":
        """Return a configuration obtained by applying ``transform(i, state)``."""
        return Configuration([transform(i, state) for i, state in enumerate(self._states)])

    def rotate(self, offset: int) -> "Configuration[StateT]":
        """Configuration with agent indices shifted by ``offset``.

        ``rotate(k)[i] == self[i + k]``; useful because the paper frequently
        renumbers agents "without loss of generality" so that a chosen agent
        becomes ``u_0``.
        """
        n = len(self._states)
        return Configuration([self._states[(i + offset) % n] for i in range(n)])

    # ------------------------------------------------------------------ #
    # Protocol-aware inspection helpers
    # ------------------------------------------------------------------ #
    def outputs(self, protocol: Protocol[StateT]) -> List[str]:
        """Per-agent outputs ``pi_out(C(u_i))``."""
        return [protocol.output(state) for state in self._states]

    def leader_indices(self, protocol: Protocol[StateT]) -> List[int]:
        """Indices of agents whose output is the leader symbol."""
        return [i for i, state in enumerate(self._states) if protocol.is_leader(state)]

    def leader_count(self, protocol: Protocol[StateT]) -> int:
        """Number of leaders in this configuration."""
        return len(self.leader_indices(protocol))

    def validate(self, protocol: Protocol[StateT]) -> None:
        """Validate every agent state against the protocol's state space."""
        for agent, state in enumerate(self._states):
            try:
                protocol.validate(state)
            except Exception as exc:  # re-raise with agent context
                raise InvalidConfigurationError(f"agent {agent}: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Configuration n={len(self._states)}>"


def configuration_from_factory(size: int,
                               factory: Callable[[int], StateT]) -> Configuration[StateT]:
    """Build a configuration by calling ``factory(agent_index)`` for every agent."""
    return Configuration([factory(agent) for agent in range(size)])


def uniform_configuration(size: int, state: StateT,
                          clone: Callable[[StateT], StateT]) -> Configuration[StateT]:
    """Configuration in which every agent holds an independent copy of ``state``."""
    return Configuration([clone(state) for _ in range(size)])


def random_configuration(protocol: Protocol[StateT], size: int,
                         rng) -> Configuration[StateT]:
    """Adversarial configuration with independently random states.

    Self-stabilization quantifies over *all* initial configurations; drawing
    each agent's state uniformly from the protocol's state space is the
    standard empirical stand-in for the adversary.
    """
    return Configuration([protocol.random_state(rng) for _ in range(size)])


def leaders_in(states: Iterable[StateT], protocol: Protocol[StateT]) -> int:
    """Count leaders in a plain iterable of states (no Configuration needed)."""
    return sum(1 for state in states if protocol.is_leader(state))
