"""State-space encoding: compile a protocol into an integer transition table.

The step-by-step :class:`~repro.core.simulator.Simulation` pays one Python
call to ``protocol.transition`` — building two fresh state objects, comparing
them for equality, and touching several attributes — for **every** scheduled
interaction.  The convergence experiments execute millions of interactions
per trial, so that call is the hot path of the whole repository.

For protocols with a small state space the work per interaction is wildly
redundant: there are only ``|Q|^2`` distinct interactions.  A
:class:`StateEncoder` enumerates the reachable state space once (closure of
the seed states under the transition function), assigns each state an integer
code, and compiles the transition function into dense flat tables indexed by
``initiator_code * |Q| + responder_code``.  The batched engine
(:mod:`repro.core.fast_simulator`) then replays interactions with a couple of
list lookups per step instead of a protocol call.

The enumerate-or-fallback contract
----------------------------------
``StateEncoder.build`` either returns a *complete* table — every state
reachable from the seeds is encoded, so a simulation driven by the table can
never step outside it — or raises :class:`StateSpaceError`:

* immediately, when the protocol's declared ``state_space_size()`` bound
  already exceeds ``max_states`` (no enumeration work is wasted on protocols
  like ``P_PL`` whose state space is super-polylogarithmic in practice);
* during enumeration, when the closure grows past ``max_states``.

Callers that want the fallback rather than the error use
:meth:`StateEncoder.try_build` and drop to the step engine on ``None``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Generic, Hashable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.errors import InvalidParameterError, InvalidStateError, StateSpaceError
from repro.core.protocol import Protocol
from repro.core.rng import RandomSource

StateT = TypeVar("StateT")

#: Enumeration cap: |Q| states means |Q|^2 compiled transitions, so the cap
#: bounds table build time (~|Q|^2 protocol calls) and memory (4 flat lists of
#: |Q|^2 ints).  512 states -> at most ~262k transition calls, well under a
#: second, amortized over the millions of steps a trial then executes.
DEFAULT_MAX_STATES = 512


def _state_key(state: object) -> Hashable:
    """A hashable identity for ``state`` consistent with its ``__eq__``.

    Hashable states are used directly.  The mutable dataclass states of this
    package (``__slots__``, ``eq=True``) are unhashable, so they are keyed by
    ``(type, astuple)`` — identical to dataclass equality, which is what the
    step engine's ``changed`` comparison uses.
    """
    try:
        # Hashability probe only: the value is discarded, so the process
        # salt cannot leak into any derived seed or key.
        hash(state)  # repro: allow[REP001]
    except TypeError:
        if dataclasses.is_dataclass(state):
            return (type(state), dataclasses.astuple(state))
        raise StateSpaceError(
            f"state {state!r} is neither hashable nor a dataclass; "
            "the encoder cannot key it"
        ) from None
    return state


class StateEncoder(Generic[StateT]):
    """Integer codes plus a compiled transition table for one protocol.

    Instances are immutable after :meth:`build` and shared safely between
    simulations of the same protocol whose initial states are covered.
    """

    def __init__(
        self,
        protocol: Protocol[StateT],
        states: List[StateT],
        index: Dict[Hashable, int],
        initiator_out: List[int],
        responder_out: List[int],
    ) -> None:
        self._protocol = protocol
        self._states = states
        self._index = index
        self._initiator_out = initiator_out
        self._responder_out = responder_out
        self._numpy_tables: "Optional[Dict[str, object]]" = None
        self._leader_flags = [protocol.is_leader(state) for state in states]
        width = len(states)
        self._changed = [
            initiator_out[qq] != qq // width or responder_out[qq] != qq % width
            for qq in range(width * width)
        ]
        flags = self._leader_flags
        self._leader_delta = [
            flags[initiator_out[qq]] + flags[responder_out[qq]]
            - flags[qq // width] - flags[qq % width]
            for qq in range(width * width)
        ]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        protocol: Protocol[StateT],
        seeds: Sequence[StateT] = (),
        max_states: int = DEFAULT_MAX_STATES,
        use_declared_bound: bool = True,
    ) -> "StateEncoder[StateT]":
        """Enumerate the closure of ``seeds`` under ``protocol.transition``.

        ``seeds`` defaults to ``protocol.canonical_states()`` when empty.
        Raises :class:`StateSpaceError` when the state space cannot be
        enumerated within ``max_states`` (see the module docstring for the
        contract); ``use_declared_bound=False`` skips the fast pre-check
        against ``protocol.state_space_size()`` and always attempts the
        enumeration, for protocols whose declared bound is very loose.
        """
        if max_states < 1:
            raise InvalidParameterError(f"max_states must be >= 1, got {max_states}")
        try:
            bound = protocol.state_space_size()
        except NotImplementedError:
            bound = None
        if use_declared_bound and bound is not None and bound > max_states:
            raise StateSpaceError(
                f"{protocol.name} declares up to {bound} states per agent, "
                f"over the enumeration cap of {max_states}"
            )
        seed_states = list(seeds) if seeds else list(protocol.canonical_states())
        if not seed_states:
            raise InvalidParameterError(
                f"{protocol.name}: no seed states to enumerate from "
                "(pass the initial configuration's states)"
            )

        states: List[StateT] = []
        index: Dict[Hashable, int] = {}

        def intern(state: StateT) -> int:
            key = _state_key(state)
            code = index.get(key)
            if code is not None:
                return code
            if len(states) >= max_states:
                # Name the state that overflowed and the declared bound:
                # when a spec mis-declares state_space_size() this is the
                # first (and only) place the mismatch surfaces.
                declared = (f"declares {bound} states per agent"
                            if bound is not None
                            else "declares no finite state bound")
                raise StateSpaceError(
                    f"{protocol.name}: reachable state space exceeds the "
                    f"enumeration cap of {max_states}: state {state!r} "
                    f"would be state #{max_states + 1} "
                    f"(the protocol {declared})"
                )
            code = len(states)
            index[key] = code
            states.append(state)
            return code

        for state in seed_states:
            intern(state)

        # Closure: compile every (initiator, responder) code pair, interning
        # newly discovered successor states; repeat until a full pass adds
        # nothing.  ``pairs`` keeps already-compiled entries across passes so
        # each pair's transition runs exactly once.
        pairs: Dict[Tuple[int, int], Tuple[int, int]] = {}
        while True:
            size = len(states)
            for ci in range(size):
                for cr in range(size):
                    if (ci, cr) in pairs:
                        continue
                    after_i, after_r = protocol.transition(states[ci], states[cr])
                    pairs[(ci, cr)] = (intern(after_i), intern(after_r))
            if len(states) == size:
                break

        width = len(states)
        initiator_out = [0] * (width * width)
        responder_out = [0] * (width * width)
        for (ci, cr), (ni, nr) in pairs.items():
            qq = ci * width + cr
            initiator_out[qq] = ni
            responder_out[qq] = nr
        return cls(protocol, states, index, initiator_out, responder_out)

    @classmethod
    def try_build(
        cls,
        protocol: Protocol[StateT],
        seeds: Sequence[StateT] = (),
        max_states: int = DEFAULT_MAX_STATES,
        use_declared_bound: bool = True,
    ) -> "Optional[StateEncoder[StateT]]":
        """Like :meth:`build`, but returns ``None`` instead of raising
        :class:`StateSpaceError` — the engine-selection spelling of the
        enumerate-or-fallback contract."""
        try:
            return cls.build(protocol, seeds, max_states=max_states,
                             use_declared_bound=use_declared_bound)
        except StateSpaceError:
            return None

    # ------------------------------------------------------------------ #
    # Codes
    # ------------------------------------------------------------------ #
    @property
    def protocol(self) -> Protocol[StateT]:
        """The protocol this table was compiled from."""
        return self._protocol

    @property
    def num_states(self) -> int:
        """``|Q|``: number of enumerated (reachable) states."""
        return len(self._states)

    def encode(self, state: StateT) -> int:
        """Integer code of ``state``; unknown states raise :class:`InvalidStateError`."""
        code = self._index.get(_state_key(state))
        if code is None:
            raise InvalidStateError(
                f"state {state!r} is outside the enumerated state space of "
                f"{self._protocol.name} ({self.num_states} states)"
            )
        return code

    def encode_all(self, states: Iterable[StateT]) -> List[int]:
        """Codes for a whole configuration, in agent order."""
        return [self.encode(state) for state in states]

    def covers(self, states: Iterable[StateT]) -> bool:
        """True when every state of ``states`` is inside the enumerated space.

        The coverage test behind encoder sharing: a cached encoder compiled
        for one batch can serve a trial exactly when it covers that trial's
        initial configuration (the table is a closure, so covered seeds can
        never step outside it).
        """
        index = self._index
        return all(_state_key(state) in index for state in states)

    def decode(self, code: int) -> StateT:
        """A state equal to the one ``code`` stands for (fresh copy if mutable)."""
        state = self._states[code]
        copy = getattr(state, "copy", None)
        return copy() if copy is not None else state

    def decode_all(self, codes: Iterable[int]) -> List[StateT]:
        """Fresh-copy decoding of a whole configuration, in agent order."""
        return [self.decode(code) for code in codes]

    def decode_view(self, codes: Iterable[int]) -> List[StateT]:
        """Zero-copy decoding: representative objects, possibly aliased.

        Agents in equal states share one object, so callers must treat the
        result as read-only.  Used for predicate evaluation on the hot path.
        """
        states = self._states
        return [states[code] for code in codes]

    # ------------------------------------------------------------------ #
    # Compiled tables (consumed by the batched engine)
    # ------------------------------------------------------------------ #
    def tables(self) -> Tuple[List[int], List[int], List[bool], List[int]]:
        """``(initiator_out, responder_out, changed, leader_delta)``, each a
        flat list indexed by ``initiator_code * num_states + responder_code``.

        ``changed[qq]`` is exactly the step engine's "did some state change"
        comparison; ``leader_delta[qq]`` is the net change in the number of
        leader outputs, enabling O(1) incremental leader counts.
        """
        return self._initiator_out, self._responder_out, self._changed, self._leader_delta

    def leader_flags(self) -> List[bool]:
        """Per-code leader output, indexed by state code."""
        return self._leader_flags

    def numpy_tables(self) -> Dict[str, object]:
        """The compiled tables as dense ``numpy`` arrays (built lazily, cached).

        Keys: ``initiator_out`` / ``responder_out`` (``int64``, usable
        directly as gather indices without an intp cast), ``changed``
        (``bool``), ``leader_delta`` (``int64``), ``leader_flags``
        (``int64`` 0/1).  One conversion serves every simulation sharing
        this encoder — including the worker processes that inherit it
        through ``fork``.  Raises ``ImportError`` when numpy is missing;
        callers gate on :func:`repro.core.fast_simulator.numpy_available`.
        """
        if self._numpy_tables is None:
            import numpy

            self._numpy_tables = {
                "initiator_out": numpy.array(self._initiator_out, dtype=numpy.int64),
                "responder_out": numpy.array(self._responder_out, dtype=numpy.int64),
                "changed": numpy.array(self._changed, dtype=bool),
                "leader_delta": numpy.array(self._leader_delta, dtype=numpy.int64),
                "leader_flags": numpy.array(self._leader_flags, dtype=numpy.int64),
            }
        return self._numpy_tables

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<StateEncoder protocol={self._protocol.name!r} "
                f"states={self.num_states}>")


#: Probe draws for :func:`coverage_seeds`, relative to the declared state
#: bound: with ``32 * bound`` uniform samples the chance of any reachable
#: state being missed is below ``bound * e^-32`` — negligible, and a miss
#: only costs the per-trial fallback rebuild, never correctness.
_PROBE_FACTOR = 32
_MAX_PROBES = 4096


def coverage_seeds(protocol: Protocol[StateT],
                   max_states: int = DEFAULT_MAX_STATES) -> List[StateT]:
    """Seed states for a *batch-shared* encoder.

    A per-trial encoder is seeded with that trial's initial configuration, so
    it covers it by construction.  A shared encoder is compiled before any
    trial's configuration exists, so its seeds must span the states an
    adversarial family may draw: the canonical states plus a deterministic
    sweep of ``protocol.random_state`` samples (an independent fixed-label
    stream, so no trial stream is perturbed).  Protocols without a declared
    finite bound get the canonical states only — they fall back to per-trial
    compilation anyway.
    """
    seeds = list(protocol.canonical_states())
    try:
        bound = protocol.state_space_size()
    except NotImplementedError:
        bound = None
    if bound is not None and bound <= max_states:
        probe_rng = RandomSource(0).spawn(f"encoder-probe-{protocol.name}")
        probes = min(_PROBE_FACTOR * bound, _MAX_PROBES)
        seeds.extend(protocol.random_state(probe_rng) for _ in range(probes))
    return seeds
