"""Core population-protocol machinery: protocols, configurations, schedulers, simulator."""

from repro.core.configuration import (
    Configuration,
    configuration_from_factory,
    random_configuration,
    uniform_configuration,
)
from repro.core.encoding import DEFAULT_MAX_STATES, StateEncoder
from repro.core.errors import (
    ConvergenceError,
    InvalidConfigurationError,
    InvalidParameterError,
    InvalidStateError,
    ReproError,
    ScheduleExhaustedError,
    StateSpaceError,
    TopologyError,
)
from repro.core.fast_simulator import (
    ENGINES,
    BatchedSimulation,
    NumpySimulation,
    batched_simulation_factory,
    numpy_available,
    numpy_simulation_factory,
)
from repro.core.metrics import LeaderTrajectory, StepMetrics
from repro.core.protocol import (
    FOLLOWER_OUTPUT,
    LEADER_OUTPUT,
    LeaderElectionProtocol,
    Protocol,
)
from repro.core.recorder import ExecutionTrace, FieldWatcher, InteractionRecord, TraceRecorder
from repro.core.rng import RandomSource, ensure_source
from repro.core.scheduler import (
    InterleavedScheduler,
    Scheduler,
    SequenceScheduler,
    UniformRandomScheduler,
    concat,
    full_clockwise_sweep,
    full_counterclockwise_sweep,
    repeat,
    seq_l,
    seq_r,
    token_round_trip,
)
from repro.core.simulator import RunResult, Simulation

__all__ = [
    "BatchedSimulation",
    "Configuration",
    "ConvergenceError",
    "DEFAULT_MAX_STATES",
    "ENGINES",
    "ExecutionTrace",
    "FieldWatcher",
    "FOLLOWER_OUTPUT",
    "InteractionRecord",
    "InterleavedScheduler",
    "InvalidConfigurationError",
    "InvalidParameterError",
    "InvalidStateError",
    "LEADER_OUTPUT",
    "LeaderElectionProtocol",
    "LeaderTrajectory",
    "NumpySimulation",
    "Protocol",
    "RandomSource",
    "ReproError",
    "RunResult",
    "ScheduleExhaustedError",
    "Scheduler",
    "SequenceScheduler",
    "Simulation",
    "StateEncoder",
    "StateSpaceError",
    "StepMetrics",
    "TopologyError",
    "TraceRecorder",
    "UniformRandomScheduler",
    "batched_simulation_factory",
    "concat",
    "numpy_available",
    "numpy_simulation_factory",
    "configuration_from_factory",
    "ensure_source",
    "full_clockwise_sweep",
    "full_counterclockwise_sweep",
    "random_configuration",
    "repeat",
    "seq_l",
    "seq_r",
    "token_round_trip",
    "uniform_configuration",
]
