"""Schedulers: who interacts at each step.

The paper's analysis assumes the *uniformly random scheduler*: at every step
one arc of the population graph is chosen uniformly at random
(Section 2, ``Pr(Gamma_t = (u_i, u_{i+1})) = 1/n`` on a directed ring).

This module provides

* :class:`UniformRandomScheduler` — the model's scheduler,
* :class:`SequenceScheduler` — replays an explicit arc sequence, used by
  tests and by reproductions of the paper's ``seq_R``/``seq_L`` arguments,
* :class:`InterleavedScheduler` — alternates a deterministic prefix with a
  random suffix (useful to drive a configuration into a known region and then
  measure random behaviour from there),
* the helpers :func:`seq_r` and :func:`seq_l` that build the interaction
  sequences ``seq_R(i, j)`` and ``seq_L(i, j)`` of Section 2.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Sequence

from repro.core.errors import ScheduleExhaustedError
from repro.core.rng import RandomSource, ensure_source
from repro.topology.graph import Arc, Population
from repro.topology.ring import DirectedRing


class Scheduler(abc.ABC):
    """Produces the interaction for each time step."""

    @abc.abstractmethod
    def next_arc(self) -> Arc:
        """Return the arc scheduled for the next step."""

    def reset(self) -> None:
        """Return the scheduler to its initial state (optional)."""

    def getstate(self) -> object:
        """Opaque snapshot of the scheduler's stream position.

        Together with :meth:`setstate` this is the scheduler half of the
        engine ``snapshot()/restore()`` contract: restoring a captured state
        must make the subsequent :meth:`next_arc` stream bit-identical to the
        one that would have followed the capture.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state capture"
        )

    def setstate(self, state: object) -> None:
        """Rewind the scheduler to a state captured by :meth:`getstate`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state capture"
        )


class UniformRandomScheduler(Scheduler):
    """The uniformly random scheduler of the population-protocol model.

    Arcs are drawn through :meth:`Population.sample_arc` — one
    ``randrange(num_arcs)`` draw per step — so populations with an implicit
    arc set (e.g. large complete graphs) never have to materialize their
    arc list just to be scheduled.
    """

    def __init__(self, population: Population, rng: "RandomSource | int | None" = None) -> None:
        self._population = population
        self._rng = ensure_source(rng)
        self._num_arcs = population.num_arcs
        # Hot path: index the arc list directly when the population already
        # has one (rings, explicit graphs); go through the closed-form
        # sample_arc only for lazy/implicit arc sets, which must never be
        # forced to materialize.  Both paths consume one randrange per draw.
        self._arcs = population.arcs if population.has_materialized_arcs else None
        # Snapshot of the stream position at construction: reset() rewinds to
        # it, which works for seeded, entropy-seeded, and mid-stream sources.
        self._initial_rng_state = self._rng.getstate()

    def next_arc(self) -> Arc:
        arcs = self._arcs
        if arcs is not None:
            return arcs[self._rng.randrange(self._num_arcs)]
        return self._population.sample_arc(self._rng)

    def reset(self) -> None:
        """Rewind the random stream so a replay reproduces the same arcs."""
        self._rng.setstate(self._initial_rng_state)

    def getstate(self) -> object:
        return self._rng.getstate()

    def setstate(self, state: object) -> None:
        self._rng.setstate(state)

    @property
    def rng(self) -> RandomSource:
        """The underlying random source (exposed for seeding sub-streams)."""
        return self._rng


class SequenceScheduler(Scheduler):
    """Replays a fixed sequence of arcs, then raises :class:`ScheduleExhaustedError`."""

    def __init__(self, arcs: Iterable[Arc]) -> None:
        self._arcs: List[Arc] = list(arcs)
        self._cursor = 0

    def next_arc(self) -> Arc:
        if self._cursor >= len(self._arcs):
            raise ScheduleExhaustedError(
                f"sequence scheduler exhausted after {len(self._arcs)} interactions"
            )
        arc = self._arcs[self._cursor]
        self._cursor += 1
        return arc

    def reset(self) -> None:
        self._cursor = 0

    def getstate(self) -> object:
        return self._cursor

    def setstate(self, state: object) -> None:
        self._cursor = int(state)  # type: ignore[call-overload]

    @property
    def remaining(self) -> int:
        """Number of interactions left in the sequence."""
        return len(self._arcs) - self._cursor

    def __len__(self) -> int:
        return len(self._arcs)


class InterleavedScheduler(Scheduler):
    """Plays a deterministic prefix, then falls back to a random scheduler."""

    def __init__(self, prefix: Sequence[Arc], population: Population,
                 rng: "RandomSource | int | None" = None) -> None:
        self._prefix = SequenceScheduler(prefix)
        self._random = UniformRandomScheduler(population, rng)

    def next_arc(self) -> Arc:
        if self._prefix.remaining > 0:
            return self._prefix.next_arc()
        return self._random.next_arc()

    def reset(self) -> None:
        """Rewind both halves so a reset replay is an exact repetition.

        Resetting only the deterministic prefix would continue the random
        suffix from wherever its stream happened to be, silently producing a
        different execution on replay.
        """
        self._prefix.reset()
        self._random.reset()

    def getstate(self) -> object:
        return (self._prefix.getstate(), self._random.getstate())

    def setstate(self, state: object) -> None:
        prefix_state, random_state = state  # type: ignore[misc]
        self._prefix.setstate(prefix_state)
        self._random.setstate(random_state)


class BiasedArcScheduler(Scheduler):
    """A weighted-arc scheduler: a "hot" prefix of arcs is drawn more often.

    Models scheduler bias as an adversarial perturbation: the first
    ``hot_arcs`` arcs (in the population's canonical arc order) are each
    ``weight`` times as likely as any other arc.  ``weight=1`` degenerates to
    the uniformly random scheduler's distribution (over a materialized arc
    list).

    One ``randrange(total)`` draw per step over the *weighted* index space
    ``total = num_arcs + (weight - 1) * hot_arcs``, mapped back to an arc
    index arithmetically — fully deterministic given the seed, so all three
    engines replay the identical arc stream through scheduler mode.
    """

    def __init__(self, population: Population, weight: int,
                 hot_arcs: Optional[int] = None,
                 rng: "RandomSource | int | None" = None) -> None:
        if weight < 1:
            raise ValueError(f"bias weight must be >= 1, got {weight}")
        num_arcs = population.num_arcs
        if hot_arcs is None:
            hot_arcs = max(1, num_arcs // 4)
        if not 1 <= hot_arcs <= num_arcs:
            raise ValueError(
                f"hot_arcs must be in [1, {num_arcs}], got {hot_arcs}"
            )
        self._population = population
        self._rng = ensure_source(rng)
        self._num_arcs = num_arcs
        self._weight = weight
        self._hot = hot_arcs
        self._total = num_arcs + (weight - 1) * hot_arcs
        self._arcs = population.arcs if population.has_materialized_arcs else None
        self._initial_rng_state = self._rng.getstate()

    def _next_index(self) -> int:
        draw = self._rng.randrange(self._total)
        hot_span = self._hot * self._weight
        if draw < hot_span:
            return draw // self._weight
        return self._hot + (draw - hot_span)

    def next_arc(self) -> Arc:
        index = self._next_index()
        arcs = self._arcs
        if arcs is not None:
            return arcs[index]
        return self._population.arc_by_index(index)

    def reset(self) -> None:
        self._rng.setstate(self._initial_rng_state)

    def getstate(self) -> object:
        return self._rng.getstate()

    def setstate(self, state: object) -> None:
        self._rng.setstate(state)

    @property
    def rng(self) -> RandomSource:
        """The underlying random source (exposed for seeding sub-streams)."""
        return self._rng


# ---------------------------------------------------------------------- #
# The paper's interaction-sequence notation (Section 2)
# ---------------------------------------------------------------------- #
def seq_r(ring: DirectedRing, start: int, length: int) -> List[Arc]:
    """``seq_R(i, j) = e_i, e_{i+1}, ..., e_{i+j-1}`` (clockwise sweep)."""
    return [ring.arc_e(start + offset) for offset in range(length)]


def seq_l(ring: DirectedRing, start: int, length: int) -> List[Arc]:
    """``seq_L(i, j) = e_{i-1}, e_{i-2}, ..., e_{i-j}`` (counter-clockwise sweep)."""
    return [ring.arc_e(start - offset - 1) for offset in range(length)]


def concat(*sequences: Sequence[Arc]) -> List[Arc]:
    """Concatenate interaction sequences (the paper's ``.`` operator)."""
    result: List[Arc] = []
    for sequence in sequences:
        result.extend(sequence)
    return result


def repeat(sequence: Sequence[Arc], times: int) -> List[Arc]:
    """Repeat an interaction sequence (the paper's ``s^i`` notation)."""
    if times < 0:
        raise ValueError(f"cannot repeat a sequence {times} times")
    return list(sequence) * times


def full_clockwise_sweep(ring: DirectedRing, start: int = 0,
                         laps: int = 1) -> List[Arc]:
    """``seq_R(start, n)`` repeated ``laps`` times — a full clockwise traversal."""
    return repeat(seq_r(ring, start, ring.size), laps)


def full_counterclockwise_sweep(ring: DirectedRing, start: int = 0,
                                laps: int = 1) -> List[Arc]:
    """``seq_L(start, n)`` repeated ``laps`` times — a full counter-clockwise traversal."""
    return repeat(seq_l(ring, start, ring.size), laps)


def token_round_trip(ring: DirectedRing, segment_start: int, psi: int,
                     repetitions: Optional[int] = None) -> List[Arc]:
    """The sequence ``(seq_R(k, 2psi-1) . seq_L(k+2psi-1, 2psi-1))^{2psi}`` of Lemma 3.5.

    Drives a token generated at the border agent ``u_k`` (``k = segment_start``)
    through its complete zig-zag trajectory over two adjacent segments.
    """
    if repetitions is None:
        repetitions = 2 * psi
    forward = seq_r(ring, segment_start, 2 * psi - 1)
    backward = seq_l(ring, segment_start + 2 * psi - 1, 2 * psi - 1)
    return repeat(concat(forward, backward), repetitions)
