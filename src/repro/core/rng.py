"""Random-source abstraction shared by schedulers and adversaries.

Everything random in this package flows through :class:`RandomSource`, a thin
wrapper around :class:`random.Random`, so that

* every experiment is reproducible from a single integer seed,
* independent components (scheduler, adversary, oracle baselines) can be given
  independent sub-streams derived from the same master seed, and
* tests can substitute a deterministic stub.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence, TypeVar

ItemT = TypeVar("ItemT")


class RandomSource:
    """Seedable random source with the handful of primitives the package needs."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    # ------------------------------------------------------------------ #
    # Stream management
    # ------------------------------------------------------------------ #
    @property
    def seed(self) -> Optional[int]:
        """Seed this source was created with (``None`` for entropy-seeded)."""
        return self._seed

    def getstate(self) -> object:
        """Opaque snapshot of the stream position (pass to :meth:`setstate`).

        Used by schedulers to support exact replay: a snapshot taken at
        construction lets ``reset()`` rewind the stream to that point even
        when the source was entropy-seeded or handed over mid-stream.
        """
        return self._random.getstate()

    def setstate(self, state: object) -> None:
        """Rewind the stream to a snapshot previously taken with :meth:`getstate`."""
        self._random.setstate(state)

    def spawn(self, label: str) -> "RandomSource":
        """Derive an independent child stream identified by ``label``.

        Children of the same parent with different labels produce independent
        sequences; the same (seed, label) pair always produces the same child,
        which keeps multi-component experiments reproducible.  The derivation
        uses a stable hash — Python's built-in ``hash()`` of a string is
        salted per process (``PYTHONHASHSEED``), which would make the "same"
        seed produce different streams in every new interpreter.
        """
        if self._seed is None:
            return RandomSource(self._random.getrandbits(64))
        digest = hashlib.blake2b(
            f"{self._seed}\x1f{label}".encode("utf-8"), digest_size=8
        ).digest()
        return RandomSource(int.from_bytes(digest, "big"))

    # ------------------------------------------------------------------ #
    # Primitives
    # ------------------------------------------------------------------ #
    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return self._random.randint(low, high)

    def randrange(self, upper: int) -> int:
        """Uniform integer in ``[0, upper)``."""
        return self._random.randrange(upper)

    def randrange_callable(self):
        """The fastest ``upper -> [0, upper)`` callable with the same stream.

        For a positive ``upper``, ``random.Random.randrange(upper)`` is a thin
        argument-checking wrapper around ``_randbelow`` — the two consume the
        generator identically, so hot loops (the batched engine draws one
        index per interaction) can skip the wrapper without perturbing any
        seeded stream.  Falls back to :meth:`randrange` if the CPython
        internal ever disappears; the engine cross-check suite would catch a
        stream divergence either way.
        """
        return getattr(self._random, "_randbelow", None) or self.randrange

    def randbits_words(self, count: int) -> bytes:
        """``count`` raw 32-bit generator outputs as little-endian bytes.

        ``random.Random.getrandbits(32 * count)`` consumes exactly ``count``
        outputs of the underlying Mersenne-Twister core and packs them into
        one integer low-word-first, so the returned buffer contains the very
        same 32-bit words that ``count`` individual ``getrandbits(32)`` calls
        would produce, in order.  This is the bulk primitive behind the
        vectorized engine's exact replay of the ``randrange`` stream: feed
        these words through the same rejection rule ``_randbelow`` applies
        (take the top ``bit_length(upper)`` bits, skip values ``>= upper``)
        and the accepted values equal consecutive :meth:`randrange` results.

        A source being drained this way is *owned* by its consumer: the bulk
        read advances the stream past words that per-call consumers have not
        yet seen, so mixing both access styles on one source diverges from
        the per-call stream.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return self._random.getrandbits(32 * count).to_bytes(4 * count, "little")

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def coin(self) -> bool:
        """Fair coin flip."""
        return self._random.random() < 0.5

    def choice(self, items: Sequence[ItemT]) -> ItemT:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomSource(seed={self._seed!r})"


def ensure_source(rng: "RandomSource | int | None") -> RandomSource:
    """Coerce ``rng`` into a :class:`RandomSource`.

    Accepts an existing source (returned unchanged), an integer seed, or
    ``None`` (entropy-seeded).  This lets public APIs accept the most
    convenient spelling at call sites.
    """
    if isinstance(rng, RandomSource):
        return rng
    return RandomSource(rng)
