"""The batched simulation engine: table-driven stepping over integer codes.

:class:`BatchedSimulation` is a drop-in replacement for
:class:`~repro.core.simulator.Simulation` for protocols whose state space a
:class:`~repro.core.encoding.StateEncoder` can enumerate.  Instead of one
``protocol.transition`` Python call, two state writes, and an observer loop
per interaction, it

* draws scheduler arcs in blocks (one ``randrange`` per step, the same draws
  in the same order as :class:`~repro.core.scheduler.UniformRandomScheduler`,
  so random streams are bit-identical across engines),
* applies each interaction with two list lookups through the compiled
  transition table over an integer state array, and
* tracks ``steps`` / ``effective_steps`` / per-agent interaction counts /
  the leader count incrementally, so metrics cost O(1) per step and
  ``leader_count()`` is O(1) instead of an O(n) scan.

The third tier, :class:`NumpySimulation`, vectorizes the replay itself: arc
indices are recovered from bulk generator words (the exact ``randrange``
stream, see :meth:`~repro.core.rng.RandomSource.randbits_words`), endpoints
come from the population's vectorized ``numpy_endpoints``, and each block is
partitioned into conflict-free layers — within a layer no agent appears
twice, so the table applications commute and run as one gather/scatter —
with all counters updated by vectorized reductions.  ``numpy`` is an
*optional* dependency: nothing here imports it at module load, and
:func:`numpy_available` gates every selection path so the package keeps
working (on the step and batched tiers) without it.

Equivalence contract
--------------------
Driven by the same arc stream (an explicit
:class:`~repro.core.scheduler.SequenceScheduler`, or the internal random
draws from the same seed), a :class:`BatchedSimulation` or
:class:`NumpySimulation` produces **bit-identical** final configurations,
step counts, effective-step counts, and per-agent interaction counts to
:class:`Simulation` — the cross-check suites in
``tests/core/test_fast_simulator.py`` and
``tests/core/test_numpy_simulator.py`` assert this for every registered
protocol spec (the latter over every supported topology too).  What the
table engines do *not* support are per-interaction observers (there is
deliberately no per-step callback on the hot path); use the step engine when
a :class:`~repro.core.recorder.TraceRecorder` or
:class:`~repro.core.recorder.FieldWatcher` is attached.
"""

from __future__ import annotations

import importlib.util
from typing import Generic, List, Optional, TypeVar

from repro.core.configuration import Configuration
from repro.core.encoding import DEFAULT_MAX_STATES, StateEncoder
from repro.core.errors import (
    InvalidConfigurationError,
    InvalidParameterError,
    ScheduleExhaustedError,
)
from repro.core.metrics import StepMetrics
from repro.core.protocol import Protocol
from repro.core.rng import RandomSource, ensure_source
from repro.core.scheduler import Scheduler
from repro.core.simulator import RunResult, StatePredicate, resolve_check_cap
from repro.topology.graph import Population

StateT = TypeVar("StateT")

#: The engine names understood across the stack (config, registry, CLI).
ENGINES = ("auto", "step", "batched", "numpy")

#: Upper bound on one internal block: bounds the arc-draw buffer (a list of
#: ints) regardless of how many steps a single run()/run_until() burst asks for.
_MAX_BLOCK = 65_536

#: Block bounds for the numpy engine.  Conflict-layer count grows with
#: ``block / n`` while per-block fixed costs shrink with it, so the block
#: tracks the population size between these clamps.
_MIN_NUMPY_BLOCK = 1_024
_MAX_NUMPY_BLOCK = 32_768

_NUMPY_AVAILABLE: Optional[bool] = None


def numpy_available() -> bool:
    """True when the optional ``numpy`` dependency is importable (cached)."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:
            _NUMPY_AVAILABLE = importlib.util.find_spec("numpy") is not None
        except ImportError:  # a meta-path finder may veto the lookup outright
            _NUMPY_AVAILABLE = False
    return _NUMPY_AVAILABLE


def _require_numpy():
    """Import numpy for the vectorized engine, or fail with guidance."""
    if not numpy_available():
        raise InvalidParameterError(
            "the numpy engine requires the optional numpy dependency; "
            "install numpy or use --engine auto/batched/step"
        )
    import numpy

    return numpy


class BatchedSimulation(Generic[StateT]):
    """Executes one protocol on one population through a compiled table.

    Parameters mirror :class:`~repro.core.simulator.Simulation`: pass either
    a ``scheduler`` (any :class:`Scheduler`, e.g. a ``SequenceScheduler`` for
    replay/cross-checks) or an ``rng`` seed/source for the built-in uniformly
    random drawing.  ``encoder`` may be shared across simulations; when
    omitted, one is built from the initial configuration's states (raising
    :class:`~repro.core.errors.StateSpaceError` when the protocol cannot be
    enumerated — the caller is expected to fall back to the step engine).
    """

    def __init__(
        self,
        protocol: Protocol[StateT],
        population: Population,
        initial: Configuration[StateT],
        scheduler: Optional[Scheduler] = None,
        rng: "RandomSource | int | None" = None,
        encoder: "StateEncoder[StateT] | None" = None,
        max_states: int = DEFAULT_MAX_STATES,
    ) -> None:
        if len(initial) != population.size:
            raise InvalidConfigurationError(
                f"configuration has {len(initial)} agents but the population has "
                f"{population.size}"
            )
        # Shared immutable structure (protocol, topology, compiled tables):
        # identical across snapshot/restore, so not part of the run state.
        self._protocol = protocol  # repro: allow[REP006]
        self._population = population  # repro: allow[REP006]
        self._encoder = encoder if encoder is not None else StateEncoder.build(  # repro: allow[REP006]
            protocol, initial.states(), max_states=max_states
        )
        self._codes: List[int] = self._encoder.encode_all(initial.states())
        self._scheduler = scheduler
        self._rng = None if scheduler is not None else ensure_source(rng)
        self._num_arcs = population.num_arcs  # repro: allow[REP006]
        # Index an arc list only when the population already has one; lazy
        # populations (large complete graphs) stay allocation-free via the
        # closed-form arc_by_index path.
        self._arc_list = population.arcs if population.has_materialized_arcs else None  # repro: allow[REP006]
        tables = self._encoder.tables()
        self._initiator_out, self._responder_out, self._changed, self._leader_delta = tables  # repro: allow[REP006]
        self._width = self._encoder.num_states  # repro: allow[REP006]
        leader_flags = self._encoder.leader_flags()
        self._leaders = sum(leader_flags[code] for code in self._codes)
        self._total_steps = 0
        self._effective_steps = 0
        self._interactions = [0] * population.size

    # ------------------------------------------------------------------ #
    # Accessors (mirroring Simulation)
    # ------------------------------------------------------------------ #
    @property
    def protocol(self) -> Protocol[StateT]:
        """The protocol being executed."""
        return self._protocol

    @property
    def population(self) -> Population:
        """The population graph."""
        return self._population

    @property
    def encoder(self) -> StateEncoder[StateT]:
        """The compiled state encoder driving this simulation."""
        return self._encoder

    @property
    def steps(self) -> int:
        """Total number of steps executed so far."""
        return self._total_steps

    @property
    def effective_steps(self) -> int:
        """Steps in which the transition actually changed some state."""
        return self._effective_steps

    @property
    def metrics(self) -> StepMetrics:
        """Step metrics, materialized from the incremental counters.

        Unlike :class:`Simulation`, the returned object is a snapshot (the
        counters live in flat arrays on the hot path); its contents equal the
        step engine's metrics for the same arc stream.
        """
        per_agent = {
            agent: count
            for agent, count in enumerate(self._interactions)
            if count
        }
        return StepMetrics(
            steps=self._total_steps,
            interactions_per_agent=per_agent,
            effective_steps=self._effective_steps,
        )

    def state_of(self, agent: int) -> StateT:
        """Current state of one agent; out-of-range indices raise ``IndexError``."""
        if not 0 <= agent < len(self._codes):
            raise IndexError(
                f"agent {agent} out of range for a population of {len(self._codes)}"
            )
        return self._encoder.decode(self._codes[agent])

    def states(self) -> List[StateT]:
        """Snapshot of the agent states (decoded fresh on every call)."""
        return self._encoder.decode_all(self._codes)

    def codes(self) -> List[int]:
        """The live integer state array (read-only for callers)."""
        return self._codes

    def configuration(self) -> Configuration[StateT]:
        """Immutable snapshot of the current configuration."""
        return Configuration(self._encoder.decode_all(self._codes))

    def leader_count(self) -> int:
        """Number of agents currently outputting the leader symbol (O(1))."""
        return self._leaders

    def add_observer(self, observer: object) -> None:
        """Unsupported: observers would reintroduce a Python call per step."""
        raise InvalidParameterError(
            "the batched engine does not support per-interaction observers; "
            "use the step engine (Simulation) for traced runs"
        )

    # ------------------------------------------------------------------ #
    # State capture (the engine snapshot/restore contract)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Capture the full execution state (same contract as ``Simulation``)."""
        return {
            "codes": list(self._codes),
            "stream": (self._rng.getstate() if self._rng is not None
                       else self._scheduler.getstate()),
            "total_steps": self._total_steps,
            "effective_steps": self._effective_steps,
            "interactions": list(self._interactions),
            "leaders": self._leaders,
        }

    def restore(self, snapshot: dict) -> None:
        """Rewind to a state captured by :meth:`snapshot` (same simulation)."""
        self._codes = list(snapshot["codes"])
        if self._rng is not None:
            self._rng.setstate(snapshot["stream"])
        else:
            self._scheduler.setstate(snapshot["stream"])
        self._total_steps = snapshot["total_steps"]
        self._effective_steps = snapshot["effective_steps"]
        self._interactions = list(snapshot["interactions"])
        self._leaders = snapshot["leaders"]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _advance(self, count: int) -> None:
        """Execute ``count`` interactions through the table (one block).

        The totals are committed in ``finally`` so a mid-block
        :class:`ScheduleExhaustedError` (scheduler mode) leaves the counters
        exactly at the executed prefix, matching the step engine.
        """
        codes = self._codes
        width = self._width
        initiator_out = self._initiator_out
        responder_out = self._responder_out
        changed = self._changed
        leader_delta = self._leader_delta
        counts = self._interactions
        effective = 0
        leaders = self._leaders
        executed = 0
        try:
            if self._scheduler is None:
                # Draw the whole block of arc indices up front (same
                # randrange stream, in the same order, as the uniformly
                # random scheduler), then apply them through the table.
                randrange = self._rng.randrange_callable()
                num_arcs = self._num_arcs
                draws = [randrange(num_arcs) for _ in range(count)]
                arcs = self._arc_list
                if arcs is not None:
                    for index in draws:
                        initiator, responder = arcs[index]
                        qq = codes[initiator] * width + codes[responder]
                        if changed[qq]:
                            codes[initiator] = initiator_out[qq]
                            codes[responder] = responder_out[qq]
                            effective += 1
                            leaders += leader_delta[qq]
                        counts[initiator] += 1
                        counts[responder] += 1
                else:
                    arc_by_index = self._population.arc_by_index
                    for index in draws:
                        initiator, responder = arc_by_index(index)
                        qq = codes[initiator] * width + codes[responder]
                        if changed[qq]:
                            codes[initiator] = initiator_out[qq]
                            codes[responder] = responder_out[qq]
                            effective += 1
                            leaders += leader_delta[qq]
                        counts[initiator] += 1
                        counts[responder] += 1
                executed = count
            else:
                next_arc = self._scheduler.next_arc
                while executed < count:
                    initiator, responder = next_arc()
                    executed += 1
                    qq = codes[initiator] * width + codes[responder]
                    if changed[qq]:
                        codes[initiator] = initiator_out[qq]
                        codes[responder] = responder_out[qq]
                        effective += 1
                        leaders += leader_delta[qq]
                    counts[initiator] += 1
                    counts[responder] += 1
        finally:
            self._total_steps += executed
            self._effective_steps += effective
            self._leaders = leaders

    def _advance_chunked(self, count: int) -> None:
        """Execute ``count`` interactions in bounded-size blocks."""
        remaining = count
        while remaining > 0:
            block = min(remaining, _MAX_BLOCK)
            self._advance(block)
            remaining -= block

    def step(self) -> bool:
        """Execute one interaction; return True when some state changed."""
        before = self._effective_steps
        self._advance(1)
        return self._effective_steps != before

    def run(self, steps: int) -> Configuration[StateT]:
        """Execute exactly ``steps`` interactions and return the final snapshot."""
        if steps < 0:
            raise InvalidParameterError(f"steps must be non-negative, got {steps}")
        self._advance_chunked(steps)
        return self.configuration()

    def run_sequence(self) -> Configuration[StateT]:
        """Run until the (deterministic) scheduler is exhausted."""
        if self._scheduler is None:
            raise InvalidParameterError(
                "run_sequence needs an explicit (finite) scheduler; this "
                "simulation draws from a random source"
            )
        try:
            while True:
                self._advance(_MAX_BLOCK)
        except ScheduleExhaustedError:
            pass
        return self.configuration()

    def run_until(
        self,
        predicate: StatePredicate,
        max_steps: int,
        check_interval: int = 1,
        check_backoff: bool = False,
        check_interval_cap: Optional[int] = None,
    ) -> RunResult[StateT]:
        """Run until ``predicate(states)`` holds — identical semantics (and,
        per arc stream, identical step counts) to :meth:`Simulation.run_until`,
        including the optional geometric check-interval backoff.

        The predicate is evaluated on a zero-copy decoded view of the state
        array: agents in equal states share one object, so predicates must
        treat the sequence as read-only (all predicates in this package do).
        """
        if max_steps < 0:
            raise ValueError(f"max_steps must be non-negative, got {max_steps}")
        cap = resolve_check_cap(check_interval, check_backoff, check_interval_cap)
        decode_view = self._encoder.decode_view
        if predicate(decode_view(self._codes)):
            return RunResult(True, 0, self.configuration())
        executed = 0
        interval = check_interval
        while executed < max_steps:
            burst = min(interval, max_steps - executed)
            self._advance_chunked(burst)
            executed += burst
            if predicate(decode_view(self._codes)):
                return RunResult(True, executed, self.configuration())
            if check_backoff and interval < cap:
                interval = min(interval * 2, cap)
        return RunResult(False, executed, self.configuration())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BatchedSimulation protocol={self._protocol.name!r} "
            f"population={self._population.name!r} states={self._width} "
            f"steps={self._total_steps}>"
        )


def batched_simulation_factory(
    protocol: Protocol[StateT],
    population: Population,
    initial: Configuration[StateT],
    rng: RandomSource,
    encoder: "StateEncoder[StateT] | None" = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> BatchedSimulation[StateT]:
    """Batched counterpart of ``default_simulation_factory``.

    Consumes exactly one ``rng.randint`` draw — the same draw, in the same
    position, as the step-engine factory — so switching engines never shifts
    any other random stream and per-trial results stay bit-identical.
    """
    return BatchedSimulation(
        protocol, population, initial,
        rng=rng.randint(0, 2 ** 31 - 1),
        encoder=encoder, max_states=max_states,
    )


class _BlockDraws:
    """Vectorized, bit-exact replica of a :class:`RandomSource`'s
    ``randrange(upper)`` stream.

    ``random.Random.randrange`` reduces to ``_randbelow``: take the top
    ``k = upper.bit_length()`` bits of one generator word (two words when
    ``k > 32``, packed low-word-first with the last word right-shifted — the
    ``getrandbits`` layout) and redraw while the value is ``>= upper``.
    Applied to the flat word stream, the rejection rule is a *filter*: the
    ``i``-th accepted candidate equals the ``i``-th ``randrange`` result, and
    the words consumed are exactly those up to that acceptance.  This class
    pulls words in bulk (:meth:`RandomSource.randbits_words`), filters them
    vectorized, and tracks the consumption point so every block of draws is
    identical to per-call ``randrange`` on the same seed.

    The source is owned by this stream once constructed (bulk reads advance
    it past unconsumed buffered words).
    """

    _MIN_REFILL_WORDS = 32_768

    def __init__(self, source: RandomSource) -> None:
        import numpy

        self._numpy = numpy
        self._source = source
        self._buffer = numpy.empty(0, dtype=numpy.uint32)
        # Acceptance filter, recomputed per refill (and on an upper change):
        # accepted randrange values in stream order, the word index of each
        # acceptance (for exact consumption tracking), and a cursor into both.
        self._filter_upper = 0
        self._filter_words_per_draw = 1
        self._accepted = numpy.empty(0, dtype=numpy.int64)
        self._accepted_word = numpy.empty(0, dtype=numpy.int64)
        self._cursor = 0

    def _consumed_words(self) -> int:
        """Words of the current buffer consumed by the draws handed out."""
        if self._cursor == 0:
            return 0
        return (int(self._accepted_word[self._cursor - 1]) + 1) \
            * self._filter_words_per_draw

    def _refilter(self, upper: int, k: int, words_per_draw: int) -> None:
        """Apply the ``_randbelow`` rejection rule to the whole buffer."""
        numpy = self._numpy
        window = self._buffer
        if words_per_draw == 1:
            candidates = window >> numpy.uint32(32 - k)
            mask = candidates < upper
        else:
            pairs = window[:(window.size // 2) * 2].astype(numpy.uint64).reshape(-1, 2)
            candidates = (
                pairs[:, 0]
                | ((pairs[:, 1] >> numpy.uint64(64 - k)) << numpy.uint64(32))
            )
            mask = candidates < upper
        self._accepted_word = numpy.flatnonzero(mask)
        self._accepted = candidates[self._accepted_word].astype(numpy.int64)
        self._cursor = 0
        self._filter_upper = upper
        self._filter_words_per_draw = words_per_draw

    def _refill(self, upper: int, k: int, words_per_draw: int,
                minimum_words: int) -> None:
        numpy = self._numpy
        words = max(minimum_words, self._MIN_REFILL_WORDS)
        fresh = numpy.frombuffer(self._source.randbits_words(words), dtype="<u4")
        leftover = self._buffer[self._consumed_words():]
        self._buffer = numpy.concatenate((leftover, fresh)) if leftover.size else fresh
        self._refilter(upper, k, words_per_draw)

    def block(self, upper: int, count: int):
        """``count`` consecutive ``randrange(upper)`` draws as an ``int64`` array."""
        k = upper.bit_length()
        if not 1 <= k <= 63:
            raise InvalidParameterError(
                f"randrange upper bound out of the vectorized range: {upper}"
            )
        words_per_draw = 1 if k <= 32 else 2
        if upper != self._filter_upper:
            # Re-key the filter on the (rare) upper change, preserving the
            # unconsumed word stream exactly.
            self._buffer = self._buffer[self._consumed_words():]
            self._refilter(upper, k, words_per_draw)
        while self._accepted.size - self._cursor < count:
            # Words for the missing acceptances at rate upper / 2^k (>= 1/2),
            # plus variance margin; a short refill simply loops.
            missing = count - (self._accepted.size - self._cursor)
            estimate = (int(missing * ((1 << k) / upper) * 1.04) + 64) * words_per_draw
            self._refill(upper, k, words_per_draw, estimate)
        cursor = self._cursor
        self._cursor = cursor + count
        return self._accepted[cursor:cursor + count]

    def getstate(self) -> tuple:
        """Snapshot of the draw stream: source state plus buffered filter.

        The buffer/acceptance arrays are only ever *reassigned* (never
        mutated in place) by :meth:`_refill`/:meth:`_refilter`, but copies
        are taken anyway so a held snapshot can never alias live arrays.
        """
        return (
            self._source.getstate(),
            self._buffer.copy(),
            self._filter_upper,
            self._filter_words_per_draw,
            self._accepted.copy(),
            self._accepted_word.copy(),
            self._cursor,
        )

    def setstate(self, state: tuple) -> None:
        """Rewind to a stream position captured by :meth:`getstate`."""
        (source_state, buffer, upper, words_per_draw,
         accepted, accepted_word, cursor) = state
        self._source.setstate(source_state)
        self._buffer = buffer.copy()
        self._filter_upper = upper
        self._filter_words_per_draw = words_per_draw
        self._accepted = accepted.copy()
        self._accepted_word = accepted_word.copy()
        self._cursor = cursor


class NumpySimulation(Generic[StateT]):
    """The vectorized third engine tier: block replay over ``numpy`` arrays.

    API and semantics mirror :class:`BatchedSimulation` (same constructor,
    same accessors, same equivalence contract with :class:`Simulation`); the
    execution strategy differs:

    * arc indices come from :class:`_BlockDraws` (the exact ``randrange``
      stream, recovered from bulk generator words) or, under an explicit
      scheduler, from per-step ``next_arc`` calls batched into arrays;
    * each block is partitioned into conflict-free layers by iterated
      first-occurrence peeling: a step is ready when no *earlier unapplied*
      step touches either of its agents, so layer members commute and apply
      as one gather through the transition tables plus two scatters;
    * ``steps`` / ``effective_steps`` / per-agent counts / the leader count
      are vectorized reductions (``bincount`` and table-gather sums).

    Construction requires numpy (:class:`InvalidParameterError` otherwise);
    selection paths gate on :func:`numpy_available` first.  When constructed
    from an ``rng``, the simulation owns that source (bulk word reads
    advance it ahead of any per-call consumer).
    """

    def __init__(
        self,
        protocol: Protocol[StateT],
        population: Population,
        initial: Configuration[StateT],
        scheduler: Optional[Scheduler] = None,
        rng: "RandomSource | int | None" = None,
        encoder: "StateEncoder[StateT] | None" = None,
        max_states: int = DEFAULT_MAX_STATES,
    ) -> None:
        numpy = _require_numpy()
        if len(initial) != population.size:
            raise InvalidConfigurationError(
                f"configuration has {len(initial)} agents but the population has "
                f"{population.size}"
            )
        # Shared immutable structure (module handle, protocol, topology,
        # compiled tables, layout constants, read-only scratch index
        # vectors): identical across snapshot/restore by construction.
        self._numpy = numpy  # repro: allow[REP006]
        self._protocol = protocol  # repro: allow[REP006]
        self._population = population  # repro: allow[REP006]
        self._encoder = encoder if encoder is not None else StateEncoder.build(  # repro: allow[REP006]
            protocol, initial.states(), max_states=max_states
        )
        self._codes = numpy.array(self._encoder.encode_all(initial.states()),
                                  dtype=numpy.int64)
        tables = self._encoder.numpy_tables()
        self._initiator_out = tables["initiator_out"]  # repro: allow[REP006]
        self._responder_out = tables["responder_out"]  # repro: allow[REP006]
        self._changed = tables["changed"]  # repro: allow[REP006]
        self._leader_delta = tables["leader_delta"]  # repro: allow[REP006]
        self._width = self._encoder.num_states  # repro: allow[REP006]
        self._leaders = int(tables["leader_flags"][self._codes].sum())
        self._scheduler = scheduler
        self._draws = None if scheduler is not None else _BlockDraws(ensure_source(rng))
        self._num_arcs = population.num_arcs  # repro: allow[REP006]
        size = population.size
        self._interactions = numpy.zeros(size, dtype=numpy.int64)
        self._total_steps = 0
        self._effective_steps = 0
        # Half the population size balances conflict-layer count (which
        # grows with block/n) against per-block fixed costs (measured
        # optimum on the ring benchmarks), inside the global clamps.
        self._block = max(_MIN_NUMPY_BLOCK, min(_MAX_NUMPY_BLOCK, size // 2))  # repro: allow[REP006]
        # Scratch arrays reused across blocks (see _apply_block); int32 —
        # they hold in-block positions, never agent indices — to halve the
        # per-pass fill/scatter/gather traffic.  Overwritten before every
        # read, so they carry no run state across a restore.
        self._first_initiator = numpy.empty(size, dtype=numpy.int32)  # repro: allow[REP006]
        self._first_responder = numpy.empty(size, dtype=numpy.int32)  # repro: allow[REP006]
        self._ascending = numpy.arange(self._block, dtype=numpy.int32)  # repro: allow[REP006]
        self._descending = self._ascending[::-1].copy()  # repro: allow[REP006]

    # ------------------------------------------------------------------ #
    # Accessors (mirroring BatchedSimulation)
    # ------------------------------------------------------------------ #
    @property
    def protocol(self) -> Protocol[StateT]:
        """The protocol being executed."""
        return self._protocol

    @property
    def population(self) -> Population:
        """The population graph."""
        return self._population

    @property
    def encoder(self) -> StateEncoder[StateT]:
        """The compiled state encoder driving this simulation."""
        return self._encoder

    @property
    def steps(self) -> int:
        """Total number of steps executed so far."""
        return self._total_steps

    @property
    def effective_steps(self) -> int:
        """Steps in which the transition actually changed some state."""
        return self._effective_steps

    @property
    def metrics(self) -> StepMetrics:
        """Step metrics snapshot, materialized from the vectorized counters."""
        counts = self._interactions
        per_agent = {
            int(agent): int(counts[agent])
            for agent in self._numpy.flatnonzero(counts)
        }
        return StepMetrics(
            steps=self._total_steps,
            interactions_per_agent=per_agent,
            effective_steps=self._effective_steps,
        )

    def state_of(self, agent: int) -> StateT:
        """Current state of one agent; out-of-range indices raise ``IndexError``."""
        if not 0 <= agent < self._codes.shape[0]:
            raise IndexError(
                f"agent {agent} out of range for a population of "
                f"{self._codes.shape[0]}"
            )
        return self._encoder.decode(int(self._codes[agent]))

    def states(self) -> List[StateT]:
        """Snapshot of the agent states (decoded fresh on every call)."""
        return self._encoder.decode_all(self._codes.tolist())

    def codes(self) -> List[int]:
        """Snapshot of the integer state array as a plain list."""
        return self._codes.tolist()

    def configuration(self) -> Configuration[StateT]:
        """Immutable snapshot of the current configuration."""
        return Configuration(self._encoder.decode_all(self._codes.tolist()))

    def leader_count(self) -> int:
        """Number of agents currently outputting the leader symbol (O(1))."""
        return self._leaders

    def add_observer(self, observer: object) -> None:
        """Unsupported: observers would reintroduce a Python call per step."""
        raise InvalidParameterError(
            "the numpy engine does not support per-interaction observers; "
            "use the step engine (Simulation) for traced runs"
        )

    # ------------------------------------------------------------------ #
    # State capture (the engine snapshot/restore contract)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Capture the full execution state (same contract as ``Simulation``).

        In rng mode the stream snapshot includes :class:`_BlockDraws`'
        buffered-but-unconsumed generator words, so a restore resumes the
        ``randrange`` stream at the exact draw the capture was taken at.
        """
        return {
            "codes": self._codes.copy(),
            "stream": (self._draws.getstate() if self._draws is not None
                       else self._scheduler.getstate()),
            "total_steps": self._total_steps,
            "effective_steps": self._effective_steps,
            "interactions": self._interactions.copy(),
            "leaders": self._leaders,
        }

    def restore(self, snapshot: dict) -> None:
        """Rewind to a state captured by :meth:`snapshot` (same simulation)."""
        self._codes = snapshot["codes"].copy()
        if self._draws is not None:
            self._draws.setstate(snapshot["stream"])
        else:
            self._scheduler.setstate(snapshot["stream"])
        self._total_steps = snapshot["total_steps"]
        self._effective_steps = snapshot["effective_steps"]
        self._interactions = snapshot["interactions"].copy()
        self._leaders = snapshot["leaders"]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _apply_block(self, initiators, responders) -> None:
        """Apply one block of interactions through the tables, vectorized.

        The block is peeled into conflict-free layers: each pass applies
        every step whose agents' *first occurrence* among the still-unapplied
        steps is the step itself.  Within a layer no agent repeats (a later
        step sharing an agent sees that agent's earlier occurrence), and the
        earliest unapplied step is always ready, so the loop terminates in
        at most max-multiplicity passes.  Per-agent state order — and hence
        the final configuration, effective-step count, and leader count — is
        exactly the sequential one.
        """
        numpy = self._numpy
        block = initiators.shape[0]
        if block == 0:
            return
        codes = self._codes
        width = self._width
        initiator_out = self._initiator_out
        responder_out = self._responder_out
        first_initiator = self._first_initiator
        first_responder = self._first_responder
        ascending = self._ascending
        descending = self._descending
        far = self._block  # larger than any in-layer position
        size = self._interactions.shape[0]
        self._interactions += numpy.bincount(initiators, minlength=size)
        self._interactions += numpy.bincount(responders, minlength=size)
        applied_pairs = []
        while True:
            remaining = initiators.shape[0]
            first_initiator.fill(far)
            first_responder.fill(far)
            # Reversed scatter: last write wins, so each agent slot ends at
            # its smallest position — its first occurrence this pass.
            first_initiator[initiators[::-1]] = descending[self._block - remaining:]
            first_responder[responders[::-1]] = descending[self._block - remaining:]
            earliest = numpy.minimum(first_initiator, first_responder,
                                     out=first_initiator)
            positions = ascending[:remaining]
            ready = (earliest[initiators] == positions) \
                & (earliest[responders] == positions)
            chosen = numpy.flatnonzero(ready)
            layer_initiators = initiators[chosen]
            layer_responders = responders[chosen]
            pair_codes = codes[layer_initiators] * width + codes[layer_responders]
            codes[layer_initiators] = initiator_out[pair_codes]
            codes[layer_responders] = responder_out[pair_codes]
            applied_pairs.append(pair_codes)
            if chosen.shape[0] == remaining:
                break
            deferred = numpy.flatnonzero(~ready)
            initiators = initiators[deferred]
            responders = responders[deferred]
        all_pairs = (numpy.concatenate(applied_pairs)
                     if len(applied_pairs) > 1 else applied_pairs[0])
        self._effective_steps += int(self._changed[all_pairs].sum())
        self._leaders += int(self._leader_delta[all_pairs].sum())
        self._total_steps += block

    def _advance(self, count: int) -> None:
        """Execute ``count <= block`` interactions (one vectorized block)."""
        if self._draws is not None:
            indices = self._draws.block(self._num_arcs, count)
            initiators, responders = self._population.numpy_endpoints(indices)
            self._apply_block(initiators, responders)
            return
        # Scheduler mode: batch per-step next_arc() calls into one block;
        # on exhaustion apply the executed prefix, then propagate — the
        # counters end exactly at the prefix, matching the other engines.
        numpy = self._numpy
        next_arc = self._scheduler.next_arc
        arcs = []
        error = None
        try:
            for _ in range(count):
                arcs.append(next_arc())
        except ScheduleExhaustedError as exhausted:
            error = exhausted
        if arcs:
            pairs = numpy.array(arcs, dtype=numpy.int64)
            self._apply_block(numpy.ascontiguousarray(pairs[:, 0]),
                              numpy.ascontiguousarray(pairs[:, 1]))
        if error is not None:
            raise error

    def _advance_chunked(self, count: int) -> None:
        """Execute ``count`` interactions in block-bounded chunks."""
        remaining = count
        block = self._block
        while remaining > 0:
            chunk = min(remaining, block)
            self._advance(chunk)
            remaining -= chunk

    def step(self) -> bool:
        """Execute one interaction; return True when some state changed."""
        before = self._effective_steps
        self._advance(1)
        return self._effective_steps != before

    def run(self, steps: int) -> Configuration[StateT]:
        """Execute exactly ``steps`` interactions and return the final snapshot."""
        if steps < 0:
            raise InvalidParameterError(f"steps must be non-negative, got {steps}")
        self._advance_chunked(steps)
        return self.configuration()

    def run_sequence(self) -> Configuration[StateT]:
        """Run until the (deterministic) scheduler is exhausted."""
        if self._scheduler is None:
            raise InvalidParameterError(
                "run_sequence needs an explicit (finite) scheduler; this "
                "simulation draws from a random source"
            )
        try:
            while True:
                self._advance(self._block)
        except ScheduleExhaustedError:
            pass
        return self.configuration()

    def run_until(
        self,
        predicate: StatePredicate,
        max_steps: int,
        check_interval: int = 1,
        check_backoff: bool = False,
        check_interval_cap: Optional[int] = None,
    ) -> RunResult[StateT]:
        """Run until ``predicate(states)`` holds — identical semantics (and,
        per arc stream, identical step counts) to the other engines,
        including the optional geometric check-interval backoff.

        The predicate sees a zero-copy decoded view (shared representative
        objects); treat it as read-only, as every predicate here does.
        """
        if max_steps < 0:
            raise ValueError(f"max_steps must be non-negative, got {max_steps}")
        cap = resolve_check_cap(check_interval, check_backoff, check_interval_cap)
        decode_view = self._encoder.decode_view
        if predicate(decode_view(self._codes.tolist())):
            return RunResult(True, 0, self.configuration())
        executed = 0
        interval = check_interval
        while executed < max_steps:
            burst = min(interval, max_steps - executed)
            self._advance_chunked(burst)
            executed += burst
            if predicate(decode_view(self._codes.tolist())):
                return RunResult(True, executed, self.configuration())
            if check_backoff and interval < cap:
                interval = min(interval * 2, cap)
        return RunResult(False, executed, self.configuration())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<NumpySimulation protocol={self._protocol.name!r} "
            f"population={self._population.name!r} states={self._width} "
            f"steps={self._total_steps}>"
        )


def numpy_simulation_factory(
    protocol: Protocol[StateT],
    population: Population,
    initial: Configuration[StateT],
    rng: RandomSource,
    encoder: "StateEncoder[StateT] | None" = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> NumpySimulation[StateT]:
    """Vectorized counterpart of the other engine factories.

    Consumes exactly one ``rng.randint`` draw — the same draw, in the same
    position, as the step and batched factories — so switching engines never
    shifts any other random stream and per-trial results stay bit-identical.
    """
    return NumpySimulation(
        protocol, population, initial,
        rng=rng.randint(0, 2 ** 31 - 1),
        encoder=encoder, max_states=max_states,
    )
