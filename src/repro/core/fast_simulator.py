"""The batched simulation engine: table-driven stepping over integer codes.

:class:`BatchedSimulation` is a drop-in replacement for
:class:`~repro.core.simulator.Simulation` for protocols whose state space a
:class:`~repro.core.encoding.StateEncoder` can enumerate.  Instead of one
``protocol.transition`` Python call, two state writes, and an observer loop
per interaction, it

* draws scheduler arcs in blocks (one ``randrange`` per step, the same draws
  in the same order as :class:`~repro.core.scheduler.UniformRandomScheduler`,
  so random streams are bit-identical across engines),
* applies each interaction with two list lookups through the compiled
  transition table over an integer state array, and
* tracks ``steps`` / ``effective_steps`` / per-agent interaction counts /
  the leader count incrementally, so metrics cost O(1) per step and
  ``leader_count()`` is O(1) instead of an O(n) scan.

Equivalence contract
--------------------
Driven by the same arc stream (an explicit
:class:`~repro.core.scheduler.SequenceScheduler`, or the internal random
draws from the same seed), a :class:`BatchedSimulation` produces
**bit-identical** final configurations, step counts, effective-step counts,
and per-agent interaction counts to :class:`Simulation` — the cross-check
suite in ``tests/core/test_fast_simulator.py`` asserts this for every
registered protocol spec.  What it does *not* support are per-interaction
observers (there is deliberately no per-step callback on the hot path); use
the step engine when a :class:`~repro.core.recorder.TraceRecorder` or
:class:`~repro.core.recorder.FieldWatcher` is attached.
"""

from __future__ import annotations

from typing import Generic, List, Optional, TypeVar

from repro.core.configuration import Configuration
from repro.core.encoding import DEFAULT_MAX_STATES, StateEncoder
from repro.core.errors import (
    InvalidConfigurationError,
    InvalidParameterError,
    ScheduleExhaustedError,
)
from repro.core.metrics import StepMetrics
from repro.core.protocol import Protocol
from repro.core.rng import RandomSource, ensure_source
from repro.core.scheduler import Scheduler
from repro.core.simulator import RunResult, StatePredicate
from repro.topology.graph import Population

StateT = TypeVar("StateT")

#: The engine names understood across the stack (config, registry, CLI).
ENGINES = ("auto", "step", "batched")

#: Upper bound on one internal block: bounds the arc-draw buffer (a list of
#: ints) regardless of how many steps a single run()/run_until() burst asks for.
_MAX_BLOCK = 65_536


class BatchedSimulation(Generic[StateT]):
    """Executes one protocol on one population through a compiled table.

    Parameters mirror :class:`~repro.core.simulator.Simulation`: pass either
    a ``scheduler`` (any :class:`Scheduler`, e.g. a ``SequenceScheduler`` for
    replay/cross-checks) or an ``rng`` seed/source for the built-in uniformly
    random drawing.  ``encoder`` may be shared across simulations; when
    omitted, one is built from the initial configuration's states (raising
    :class:`~repro.core.errors.StateSpaceError` when the protocol cannot be
    enumerated — the caller is expected to fall back to the step engine).
    """

    def __init__(
        self,
        protocol: Protocol[StateT],
        population: Population,
        initial: Configuration[StateT],
        scheduler: Optional[Scheduler] = None,
        rng: "RandomSource | int | None" = None,
        encoder: "StateEncoder[StateT] | None" = None,
        max_states: int = DEFAULT_MAX_STATES,
    ) -> None:
        if len(initial) != population.size:
            raise InvalidConfigurationError(
                f"configuration has {len(initial)} agents but the population has "
                f"{population.size}"
            )
        self._protocol = protocol
        self._population = population
        self._encoder = encoder if encoder is not None else StateEncoder.build(
            protocol, initial.states(), max_states=max_states
        )
        self._codes: List[int] = self._encoder.encode_all(initial.states())
        self._scheduler = scheduler
        self._rng = None if scheduler is not None else ensure_source(rng)
        self._num_arcs = population.num_arcs
        # Index an arc list only when the population already has one; lazy
        # populations (large complete graphs) stay allocation-free via the
        # closed-form arc_by_index path.
        self._arc_list = population.arcs if population.has_materialized_arcs else None
        tables = self._encoder.tables()
        self._initiator_out, self._responder_out, self._changed, self._leader_delta = tables
        self._width = self._encoder.num_states
        leader_flags = self._encoder.leader_flags()
        self._leaders = sum(leader_flags[code] for code in self._codes)
        self._total_steps = 0
        self._effective_steps = 0
        self._interactions = [0] * population.size

    # ------------------------------------------------------------------ #
    # Accessors (mirroring Simulation)
    # ------------------------------------------------------------------ #
    @property
    def protocol(self) -> Protocol[StateT]:
        """The protocol being executed."""
        return self._protocol

    @property
    def population(self) -> Population:
        """The population graph."""
        return self._population

    @property
    def encoder(self) -> StateEncoder[StateT]:
        """The compiled state encoder driving this simulation."""
        return self._encoder

    @property
    def steps(self) -> int:
        """Total number of steps executed so far."""
        return self._total_steps

    @property
    def effective_steps(self) -> int:
        """Steps in which the transition actually changed some state."""
        return self._effective_steps

    @property
    def metrics(self) -> StepMetrics:
        """Step metrics, materialized from the incremental counters.

        Unlike :class:`Simulation`, the returned object is a snapshot (the
        counters live in flat arrays on the hot path); its contents equal the
        step engine's metrics for the same arc stream.
        """
        per_agent = {
            agent: count
            for agent, count in enumerate(self._interactions)
            if count
        }
        return StepMetrics(
            steps=self._total_steps,
            interactions_per_agent=per_agent,
            effective_steps=self._effective_steps,
        )

    def state_of(self, agent: int) -> StateT:
        """Current state of one agent; out-of-range indices raise ``IndexError``."""
        if not 0 <= agent < len(self._codes):
            raise IndexError(
                f"agent {agent} out of range for a population of {len(self._codes)}"
            )
        return self._encoder.decode(self._codes[agent])

    def states(self) -> List[StateT]:
        """Snapshot of the agent states (decoded fresh on every call)."""
        return self._encoder.decode_all(self._codes)

    def codes(self) -> List[int]:
        """The live integer state array (read-only for callers)."""
        return self._codes

    def configuration(self) -> Configuration[StateT]:
        """Immutable snapshot of the current configuration."""
        return Configuration(self._encoder.decode_all(self._codes))

    def leader_count(self) -> int:
        """Number of agents currently outputting the leader symbol (O(1))."""
        return self._leaders

    def add_observer(self, observer: object) -> None:
        """Unsupported: observers would reintroduce a Python call per step."""
        raise InvalidParameterError(
            "the batched engine does not support per-interaction observers; "
            "use the step engine (Simulation) for traced runs"
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _advance(self, count: int) -> None:
        """Execute ``count`` interactions through the table (one block).

        The totals are committed in ``finally`` so a mid-block
        :class:`ScheduleExhaustedError` (scheduler mode) leaves the counters
        exactly at the executed prefix, matching the step engine.
        """
        codes = self._codes
        width = self._width
        initiator_out = self._initiator_out
        responder_out = self._responder_out
        changed = self._changed
        leader_delta = self._leader_delta
        counts = self._interactions
        effective = 0
        leaders = self._leaders
        executed = 0
        try:
            if self._scheduler is None:
                # Draw the whole block of arc indices up front (same
                # randrange stream, in the same order, as the uniformly
                # random scheduler), then apply them through the table.
                randrange = self._rng.randrange_callable()
                num_arcs = self._num_arcs
                draws = [randrange(num_arcs) for _ in range(count)]
                arcs = self._arc_list
                if arcs is not None:
                    for index in draws:
                        initiator, responder = arcs[index]
                        qq = codes[initiator] * width + codes[responder]
                        if changed[qq]:
                            codes[initiator] = initiator_out[qq]
                            codes[responder] = responder_out[qq]
                            effective += 1
                            leaders += leader_delta[qq]
                        counts[initiator] += 1
                        counts[responder] += 1
                else:
                    arc_by_index = self._population.arc_by_index
                    for index in draws:
                        initiator, responder = arc_by_index(index)
                        qq = codes[initiator] * width + codes[responder]
                        if changed[qq]:
                            codes[initiator] = initiator_out[qq]
                            codes[responder] = responder_out[qq]
                            effective += 1
                            leaders += leader_delta[qq]
                        counts[initiator] += 1
                        counts[responder] += 1
                executed = count
            else:
                next_arc = self._scheduler.next_arc
                while executed < count:
                    initiator, responder = next_arc()
                    executed += 1
                    qq = codes[initiator] * width + codes[responder]
                    if changed[qq]:
                        codes[initiator] = initiator_out[qq]
                        codes[responder] = responder_out[qq]
                        effective += 1
                        leaders += leader_delta[qq]
                    counts[initiator] += 1
                    counts[responder] += 1
        finally:
            self._total_steps += executed
            self._effective_steps += effective
            self._leaders = leaders

    def _advance_chunked(self, count: int) -> None:
        """Execute ``count`` interactions in bounded-size blocks."""
        remaining = count
        while remaining > 0:
            block = min(remaining, _MAX_BLOCK)
            self._advance(block)
            remaining -= block

    def step(self) -> bool:
        """Execute one interaction; return True when some state changed."""
        before = self._effective_steps
        self._advance(1)
        return self._effective_steps != before

    def run(self, steps: int) -> Configuration[StateT]:
        """Execute exactly ``steps`` interactions and return the final snapshot."""
        if steps < 0:
            raise InvalidParameterError(f"steps must be non-negative, got {steps}")
        self._advance_chunked(steps)
        return self.configuration()

    def run_sequence(self) -> Configuration[StateT]:
        """Run until the (deterministic) scheduler is exhausted."""
        if self._scheduler is None:
            raise InvalidParameterError(
                "run_sequence needs an explicit (finite) scheduler; this "
                "simulation draws from a random source"
            )
        try:
            while True:
                self._advance(_MAX_BLOCK)
        except ScheduleExhaustedError:
            pass
        return self.configuration()

    def run_until(
        self,
        predicate: StatePredicate,
        max_steps: int,
        check_interval: int = 1,
    ) -> RunResult[StateT]:
        """Run until ``predicate(states)`` holds — identical semantics (and,
        per arc stream, identical step counts) to :meth:`Simulation.run_until`.

        The predicate is evaluated on a zero-copy decoded view of the state
        array: agents in equal states share one object, so predicates must
        treat the sequence as read-only (all predicates in this package do).
        """
        if max_steps < 0:
            raise ValueError(f"max_steps must be non-negative, got {max_steps}")
        if check_interval < 1:
            raise ValueError(f"check_interval must be positive, got {check_interval}")
        decode_view = self._encoder.decode_view
        if predicate(decode_view(self._codes)):
            return RunResult(True, 0, self.configuration())
        executed = 0
        while executed < max_steps:
            burst = min(check_interval, max_steps - executed)
            self._advance_chunked(burst)
            executed += burst
            if predicate(decode_view(self._codes)):
                return RunResult(True, executed, self.configuration())
        return RunResult(False, executed, self.configuration())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BatchedSimulation protocol={self._protocol.name!r} "
            f"population={self._population.name!r} states={self._width} "
            f"steps={self._total_steps}>"
        )


def batched_simulation_factory(
    protocol: Protocol[StateT],
    population: Population,
    initial: Configuration[StateT],
    rng: RandomSource,
    encoder: "StateEncoder[StateT] | None" = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> BatchedSimulation[StateT]:
    """Batched counterpart of ``default_simulation_factory``.

    Consumes exactly one ``rng.randint`` draw — the same draw, in the same
    position, as the step-engine factory — so switching engines never shifts
    any other random stream and per-trial results stay bit-identical.
    """
    return BatchedSimulation(
        protocol, population, initial,
        rng=rng.randint(0, 2 ** 31 - 1),
        encoder=encoder, max_states=max_states,
    )
