"""Population graphs.

A population is a weakly connected digraph ``G = (V, E)`` (Section 2).  Agents
are identified by indices ``0 .. n-1``; each arc ``(u, v)`` is a possible
interaction in which ``u`` is the initiator and ``v`` the responder.

:class:`Population` is the generic container; the :mod:`repro.topology.ring`
and :mod:`repro.topology.complete` modules provide the concrete families used
by the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.core.errors import InvalidParameterError, TopologyError
from repro.core.rng import RandomSource

#: An arc of the population graph: (initiator index, responder index).
Arc = Tuple[int, int]


class Population:
    """A population graph over agents ``0 .. n-1`` with an explicit arc list.

    Parameters
    ----------
    size:
        Number of agents ``n`` (must be at least 2, as the paper assumes).
    arcs:
        Iterable of ``(initiator, responder)`` pairs.  Duplicate arcs are
        rejected; self-loops are rejected.
    name:
        Human readable description used in reports.
    """

    def __init__(self, size: int, arcs: Iterable[Arc], name: str = "population") -> None:
        if size < 2:
            raise InvalidParameterError(f"a population needs at least 2 agents, got {size}")
        self._size = size
        self._name = name
        arc_list: List[Arc] = []
        seen = set()
        # The adjacency index: out-/in-neighbor lists in arc-enumeration
        # order plus the arc set, built once here so has_arc / degree /
        # out_neighbors / in_neighbors are O(1)-ish lookups instead of
        # O(|E|) rescans of the arc list per query.
        out_lists: List[List[int]] = [[] for _ in range(size)]
        in_lists: List[List[int]] = [[] for _ in range(size)]
        for arc in arcs:
            initiator, responder = arc
            self._check_agent(initiator)
            self._check_agent(responder)
            if initiator == responder:
                raise TopologyError(f"self-loop arc {arc} is not allowed")
            if arc in seen:
                raise TopologyError(f"duplicate arc {arc}")
            seen.add(arc)
            arc_list.append((initiator, responder))
            out_lists[initiator].append(responder)
            in_lists[responder].append(initiator)
        if not arc_list:
            raise TopologyError("a population needs at least one arc")
        self._arcs: Tuple[Arc, ...] = tuple(arc_list)
        self._arc_set = seen
        self._out_lists = out_lists
        self._in_lists = in_lists
        self._check_weakly_connected()

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of agents ``n``."""
        return self._size

    @property
    def name(self) -> str:
        """Human readable name."""
        return self._name

    @property
    def arcs(self) -> Tuple[Arc, ...]:
        """All possible interactions as (initiator, responder) pairs.

        Subclasses with an implicit arc set (e.g. :class:`CompleteGraph`)
        override this to materialize lazily; uniform sampling should go
        through :meth:`sample_arc` / :meth:`arc_by_index`, which never force
        the materialization.
        """
        return self._arcs

    @property
    def num_arcs(self) -> int:
        """Number of arcs ``|E|`` (without materializing an implicit arc set)."""
        return len(self._arcs)

    @property
    def has_materialized_arcs(self) -> bool:
        """True when :attr:`arcs` is already allocated (free to index).

        Lazy subclasses return False until the arc list has actually been
        built; hot paths use this to decide between indexing the list and
        the closed-form :meth:`arc_by_index` — without ever forcing the
        materialization themselves.
        """
        return True

    def arc_by_index(self, index: int) -> Arc:
        """The arc at position ``index`` of the arc enumeration.

        ``index`` must be in ``[0, num_arcs)``; the enumeration order matches
        :attr:`arcs`.  Subclasses with implicit arc sets override this with a
        closed form so indexing needs no arc list.
        """
        if not 0 <= index < self.num_arcs:
            raise TopologyError(
                f"arc index {index} outside [0, {self.num_arcs}) for {self._name!r}"
            )
        return self._arcs[index]

    def sample_arc(self, rng: "RandomSource") -> Arc:
        """One uniformly random arc, using a single ``randrange(num_arcs)`` draw.

        This is the hot path of the uniformly random scheduler; the single
        draw keeps random streams bit-identical to indexing an explicit arc
        list, while letting implicit-arc populations avoid allocating it.
        """
        return self.arc_by_index(rng.randrange(self.num_arcs))

    def _numpy_endpoint_arrays(self):
        """Cached ``(initiators, responders)`` endpoint arrays (``int64``).

        The cache lives here (an attribute rather than an ``__init__`` slot,
        because lazy subclasses deliberately skip ``Population.__init__``);
        subclasses customize the uncached :meth:`_build_endpoint_arrays`
        hook, or override :meth:`numpy_endpoints` outright when even a
        one-off materialization is too large (complete graphs).
        """
        cached = getattr(self, "_numpy_endpoints_cache", None)
        if cached is None:
            cached = self._build_endpoint_arrays()
            self._numpy_endpoints_cache = cached
        return cached

    def _build_endpoint_arrays(self):
        """Uncached endpoint-array construction, from the arc enumeration.

        Closed-form subclasses override this with pure array arithmetic so
        the build is vectorized and their tuple arc list stays lazy.
        """
        import numpy

        arcs = numpy.array(self.arcs, dtype=numpy.int64).reshape(-1, 2)
        return (numpy.ascontiguousarray(arcs[:, 0]),
                numpy.ascontiguousarray(arcs[:, 1]))

    def numpy_endpoints(self, indices):
        """Vectorized :meth:`arc_by_index`: endpoint arrays for an index array.

        ``indices`` is an integer ``numpy`` array of arc indices in
        ``[0, num_arcs)``; the result is the ``(initiators, responders)``
        pair of ``int64`` arrays, matching the arc enumeration element-wise.
        The default gathers from endpoint arrays cached per population;
        implicit-arc populations override it with a closed form so the hot
        path never forces a large materialization.
        """
        initiators, responders = self._numpy_endpoint_arrays()
        return initiators[indices], responders[indices]

    def agents(self) -> range:
        """Iterator over agent indices."""
        return range(self._size)

    def out_neighbors(self, agent: int) -> List[int]:
        """Agents that ``agent`` can initiate an interaction with.

        Ordered by the arc enumeration; returns a copy, so callers may
        mutate the result without corrupting the shared adjacency index.
        """
        self._check_agent(agent)
        return list(self._out_lists[agent])

    def in_neighbors(self, agent: int) -> List[int]:
        """Agents that can initiate an interaction with ``agent``.

        Ordered by the arc enumeration; returns a copy (see
        :meth:`out_neighbors`).
        """
        self._check_agent(agent)
        return list(self._in_lists[agent])

    def degree(self, agent: int) -> int:
        """Number of arcs incident to ``agent`` in either direction."""
        self._check_agent(agent)
        return len(self._out_lists[agent]) + len(self._in_lists[agent])

    def has_arc(self, initiator: int, responder: int) -> bool:
        """True when ``(initiator, responder)`` is a possible interaction."""
        return (initiator, responder) in self._arc_set

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_agent(self, agent: int) -> None:
        if not 0 <= agent < self._size:
            raise TopologyError(f"agent index {agent} outside population of size {self._size}")

    def _check_weakly_connected(self) -> None:
        visited = {0}
        frontier = [0]
        while frontier:
            current = frontier.pop()
            for neighbor in self._out_lists[current] + self._in_lists[current]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        if len(visited) != self._size:
            raise TopologyError("population graph must be weakly connected")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Population {self._name!r} n={self._size} arcs={self.num_arcs}>"


def population_from_edges(size: int, edges: Sequence[Tuple[int, int]], directed: bool,
                          name: str = "custom") -> Population:
    """Build a population from an edge list.

    When ``directed`` is False every edge ``(u, v)`` contributes both arcs
    ``(u, v)`` and ``(v, u)``, matching the paper's undirected-ring model in
    Section 5.
    """
    arcs: List[Arc] = []
    for u, v in edges:
        arcs.append((u, v))
        if not directed:
            arcs.append((v, u))
    return Population(size, arcs, name=name)
