"""2D torus populations.

A ``width x height`` torus is the grid graph with wraparound in both
dimensions: agent ``(r, c)`` (stored row-major as index ``r*width + c``) is
connected to its four lattice neighbors, and every edge contributes both
arcs.  Tori are the standard "local interactions, no orientation" contrast to
the paper's directed ring — constant degree like the ring, but with a
2-dimensional neighborhood structure.

Like :class:`~repro.topology.complete.CompleteGraph`, the arc set is
*implicit*: ``4n`` arcs in the closed-form enumeration ``arc index =
4*agent + direction`` with directions ordered (right, down, left, up), so
schedulers can index arcs uniformly without the arc list ever being
allocated.  The :attr:`arcs` property materializes lazily for callers that
genuinely need the whole enumeration.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.errors import InvalidParameterError, TopologyError
from repro.topology.graph import Arc, Population


def require_torus_dimensions(width: int, height: int) -> None:
    """Reject dimensions no simple torus exists for (shared with the registry
    validator so pre-run checks raise exactly like the constructor)."""
    if width < 3 or height < 3:
        # Below 3 the wraparound neighbors coincide (the "torus" would
        # need duplicate arcs), exactly like UndirectedRing's minimum.
        raise InvalidParameterError(
            f"a torus needs both dimensions >= 3 to be simple, "
            f"got {width}x{height}"
        )


class Torus2D(Population):
    """Bidirectional ``width x height`` torus over row-major agent indices."""

    #: Direction order of the arc enumeration: (dr, dc) per direction slot.
    _DIRECTIONS: Tuple[Tuple[int, int], ...] = ((0, 1), (1, 0), (0, -1), (-1, 0))

    def __init__(self, width: int, height: int) -> None:
        require_torus_dimensions(width, height)
        # Deliberately does NOT call Population.__init__: the base constructor
        # materializes and validates an explicit arc list; every Population
        # query is answered in closed form below instead (a torus is always
        # weakly connected, so nothing needs validating).
        self._width = width
        self._height = height
        self._size = width * height
        self._name = f"torus({width}x{height})"
        self._materialized: Optional[Tuple[Arc, ...]] = None

    # ------------------------------------------------------------------ #
    # Torus-specific helpers
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> int:
        """Number of columns."""
        return self._width

    @property
    def height(self) -> int:
        """Number of rows."""
        return self._height

    def coordinates(self, agent: int) -> Tuple[int, int]:
        """The ``(row, column)`` of an agent index."""
        self._check_agent(agent)
        return divmod(agent, self._width)

    def agent_at(self, row: int, column: int) -> int:
        """The agent index at ``(row, column)``, with wraparound."""
        return (row % self._height) * self._width + (column % self._width)

    def _neighbor(self, agent: int, direction: int) -> int:
        row, column = divmod(agent, self._width)
        dr, dc = self._DIRECTIONS[direction]
        return self.agent_at(row + dr, column + dc)

    # ------------------------------------------------------------------ #
    # Arc access, in closed form
    # ------------------------------------------------------------------ #
    @property
    def arcs(self) -> Tuple[Arc, ...]:
        """The full arc list, materialized lazily on first access.

        Prefer :meth:`arc_by_index` / :meth:`sample_arc`, which never
        allocate; this property exists for callers that genuinely need the
        whole enumeration (tests, exhaustive analyses).
        """
        if self._materialized is None:
            self._materialized = tuple(
                self.arc_by_index(index) for index in range(self.num_arcs)
            )
        return self._materialized

    @property
    def num_arcs(self) -> int:
        return 4 * self._size

    @property
    def has_materialized_arcs(self) -> bool:
        return self._materialized is not None

    def arc_by_index(self, index: int) -> Arc:
        """Closed-form indexing: arc ``4*agent + direction``."""
        if not 0 <= index < self.num_arcs:
            raise TopologyError(
                f"arc index {index} outside [0, {self.num_arcs}) for {self._name!r}"
            )
        agent, direction = divmod(index, 4)
        return (agent, self._neighbor(agent, direction))

    def _build_endpoint_arrays(self):
        """Endpoint arrays materialized once, vectorized (``4n`` entries).

        The tuple-of-tuples :attr:`arcs` list stays lazy; this builds the
        two flat arrays directly from the ``4*agent + direction`` enumeration
        with array arithmetic — no per-arc Python call.
        """
        import numpy

        agents = numpy.repeat(numpy.arange(self._size, dtype=numpy.int64), 4)
        rows, columns = numpy.divmod(agents, self._width)
        dr = numpy.array([dr for dr, _ in self._DIRECTIONS], dtype=numpy.int64)
        dc = numpy.array([dc for _, dc in self._DIRECTIONS], dtype=numpy.int64)
        directions = numpy.tile(numpy.arange(4), self._size)
        responders = ((rows + dr[directions]) % self._height) * self._width \
            + (columns + dc[directions]) % self._width
        return agents, responders

    # ------------------------------------------------------------------ #
    # Population queries, in closed form
    # ------------------------------------------------------------------ #
    def out_neighbors(self, agent: int) -> List[int]:
        self._check_agent(agent)
        return [self._neighbor(agent, direction) for direction in range(4)]

    def in_neighbors(self, agent: int) -> List[int]:
        # Every lattice neighbor initiates back; order by the arc
        # enumeration, i.e. ascending initiator index (matching what the
        # base class would report for the materialized arc list).
        self._check_agent(agent)
        return sorted(self._neighbor(agent, direction) for direction in range(4))

    def degree(self, agent: int) -> int:
        self._check_agent(agent)
        return 8  # 4 out-arcs + 4 in-arcs

    def has_arc(self, initiator: int, responder: int) -> bool:
        if not (0 <= initiator < self._size and 0 <= responder < self._size):
            return False
        return any(self._neighbor(initiator, direction) == responder
                   for direction in range(4))
