"""Population topologies: graphs, rings, complete graphs, tori, random-regular.

Concrete families live in their own modules; :mod:`repro.topology.registry`
maps names (``directed-ring``, ``undirected-ring``, ``complete``, ``torus``,
``random-regular``) to parameterized factories so the experiment stack can
select populations declaratively.
"""

from repro.topology.complete import CompleteGraph
from repro.topology.graph import Arc, Population, population_from_edges
from repro.topology.random_regular import RandomRegularGraph
from repro.topology.registry import (
    DEFAULT_TOPOLOGY,
    TopologySpec,
    build_topology,
    get_topology_spec,
    list_topologies,
    parse_topology,
    register_topology,
    topology_names,
    unregister_topology,
    validate_topology,
)
from repro.topology.ring import DirectedRing, UndirectedRing
from repro.topology.torus import Torus2D

__all__ = [
    "Arc",
    "CompleteGraph",
    "DEFAULT_TOPOLOGY",
    "DirectedRing",
    "Population",
    "RandomRegularGraph",
    "TopologySpec",
    "Torus2D",
    "UndirectedRing",
    "build_topology",
    "get_topology_spec",
    "list_topologies",
    "parse_topology",
    "population_from_edges",
    "register_topology",
    "topology_names",
    "unregister_topology",
    "validate_topology",
]
