"""Population topologies: generic graphs, rings and complete graphs."""

from repro.topology.complete import CompleteGraph
from repro.topology.graph import Arc, Population, population_from_edges
from repro.topology.ring import DirectedRing, UndirectedRing

__all__ = [
    "Arc",
    "CompleteGraph",
    "DirectedRing",
    "Population",
    "UndirectedRing",
    "population_from_edges",
]
