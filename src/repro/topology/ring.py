"""Ring populations.

The paper's main protocol ``P_PL`` runs on a *directed* ring: agents
``u_0 .. u_{n-1}`` with arcs ``(u_i, u_{i+1 mod n})`` where ``u_i`` is the
initiator (left neighbor) and ``u_{i+1}`` the responder (right neighbor).

Section 5 removes the orientation assumption; the ring-orientation protocol
``P_OR`` runs on the *undirected* ring that contains both arc directions.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.errors import InvalidParameterError, TopologyError
from repro.topology.graph import Arc, Population


class DirectedRing(Population):
    """Directed ring ``u_0 -> u_1 -> ... -> u_{n-1} -> u_0``.

    The arc ``(i, i+1 mod n)`` has index ``i`` and is referred to as ``e_i``
    in the paper; :meth:`arc_index` and :meth:`arc_by_index` convert between
    the two representations.
    """

    def __init__(self, size: int) -> None:
        if size < 2:
            raise InvalidParameterError(f"a ring needs at least 2 agents, got {size}")
        arcs = [(i, (i + 1) % size) for i in range(size)]
        super().__init__(size, arcs, name=f"directed-ring(n={size})")

    # ------------------------------------------------------------------ #
    # Ring-specific helpers
    # ------------------------------------------------------------------ #
    def left_neighbor(self, agent: int) -> int:
        """Index of ``u_{agent-1 mod n}``."""
        return (agent - 1) % self.size

    def right_neighbor(self, agent: int) -> int:
        """Index of ``u_{agent+1 mod n}``."""
        return (agent + 1) % self.size

    def arc_e(self, index: int) -> Arc:
        """The paper's interaction ``e_index = (u_{index mod n}, u_{index+1 mod n})``.

        The paper indexes arcs modularly (``e_{i+n} = e_i``), which the
        ``seq_R``/``seq_L`` sweep builders rely on.  This helper carries that
        notation; :meth:`arc_by_index` keeps the strict
        :class:`~repro.topology.graph.Population` contract of rejecting
        indices outside ``[0, num_arcs)``.
        """
        return (index % self.size, (index + 1) % self.size)

    def arc_by_index(self, index: int) -> Arc:
        """Closed-form arc lookup honouring the base-class range contract."""
        if not 0 <= index < self.size:
            raise TopologyError(
                f"arc index {index} outside [0, {self.size}) for {self.name!r}"
            )
        return self.arc_e(index)

    def arc_index(self, arc: Arc) -> int:
        """Inverse of :meth:`arc_by_index`."""
        initiator, responder = arc
        if responder != (initiator + 1) % self.size:
            raise TopologyError(f"{arc} is not an arc of the directed ring")
        return initiator

    def clockwise_distance(self, source: int, target: int) -> int:
        """Number of clockwise hops from ``source`` to ``target``."""
        return (target - source) % self.size

    def _build_endpoint_arrays(self):
        """Closed-form endpoints: arc ``i`` is ``(i, i+1 mod n)``."""
        import numpy

        initiators = numpy.arange(self.size, dtype=numpy.int64)
        return initiators, numpy.roll(initiators, -1)


class UndirectedRing(Population):
    """Ring containing both arc directions, used by ``P_OR`` (Section 5)."""

    def __init__(self, size: int) -> None:
        if size < 3:
            raise InvalidParameterError(
                f"an undirected ring needs at least 3 agents to be simple, got {size}"
            )
        arcs: List[Arc] = []
        for i in range(size):
            arcs.append((i, (i + 1) % size))
            arcs.append(((i + 1) % size, i))
        super().__init__(size, arcs, name=f"undirected-ring(n={size})")

    def neighbors(self, agent: int) -> Tuple[int, int]:
        """The two ring neighbors ``(u_{agent-1}, u_{agent+1})``."""
        return ((agent - 1) % self.size, (agent + 1) % self.size)

    def _build_endpoint_arrays(self):
        """Closed-form endpoints: arcs ``2i``/``2i+1`` are ``i -> i+1`` / ``i+1 -> i``."""
        import numpy

        agents = numpy.arange(self.size, dtype=numpy.int64)
        successors = numpy.roll(agents, -1)
        initiators = numpy.empty(2 * self.size, dtype=numpy.int64)
        responders = numpy.empty(2 * self.size, dtype=numpy.int64)
        initiators[0::2] = agents
        responders[0::2] = successors
        initiators[1::2] = successors
        responders[1::2] = agents
        return initiators, responders
