"""Random regular populations.

A random ``d``-regular graph is the classic expander-like substrate of the
population-protocol literature between the two extremes the paper contrasts
(the degree-2 ring and the degree-``n-1`` complete graph): constant degree,
but logarithmic diameter and no global orientation.

Construction is the *pairing (configuration) model* with Steger-Wormald
style pair resampling: give every vertex ``d`` stubs, then repeatedly join
two stubs drawn from the remaining pool through a seeded
:class:`~repro.core.rng.RandomSource`, redrawing pairs that would create a
self-loop or a parallel edge.  (Redrawing single pairs instead of rejecting
whole pairings matters: the all-or-nothing scheme succeeds with probability
``~exp(-(d^2-1)/4)`` per attempt, which is hopeless already at ``d = 6``.)
An attempt whose leftover stubs cannot be joined legally, or whose graph
comes out disconnected, is abandoned and resampled from its own derived
sub-stream, so the construction is a pure function of
``(size, degree, seed)``; ``max_attempts`` bounds the retry loop.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.core.errors import InvalidParameterError, TopologyError
from repro.core.rng import RandomSource
from repro.topology.graph import Arc, Population

#: Consecutive illegal pair draws after which one attempt is abandoned (the
#: stub pool is then almost surely saturated, e.g. only one vertex's stubs
#: remain and every further draw would be a self-loop or parallel edge).
_MAX_STALLED_DRAWS = 100


def require_regular_parameters(size: int, degree: int = 4, seed: int = 0) -> None:
    """Reject ``(size, degree)`` pairs no simple regular graph exists for
    (shared with the registry validator so pre-run checks raise exactly like
    the constructor, without paying for a pairing-model sample).  ``seed``
    is accepted for signature parity; any integer is a valid seed."""
    if size < 2:
        raise InvalidParameterError(
            f"a random regular graph needs at least 2 agents, got {size}"
        )
    if not 2 <= degree < size:
        raise InvalidParameterError(
            f"degree must be in [2, {size}) for {size} agents, got {degree}"
        )
    if size * degree % 2 != 0:
        raise InvalidParameterError(
            f"no {degree}-regular graph on {size} vertices exists "
            f"(n*d = {size * degree} is odd)"
        )


class RandomRegularGraph(Population):
    """Seeded random ``d``-regular population (both arcs per sampled edge)."""

    def __init__(self, size: int, degree: int = 4, seed: int = 0,
                 max_attempts: int = 100) -> None:
        require_regular_parameters(size, degree, seed)
        if max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        source = RandomSource(seed).spawn(f"random-regular-{size}-{degree}")
        edges = None
        for attempt in range(max_attempts):
            candidate = _sample_regular_edges(size, degree,
                                              source.spawn(f"attempt-{attempt}"))
            if candidate is not None and _is_connected(size, candidate):
                edges = candidate
                break
        if edges is None:
            raise TopologyError(
                f"could not sample a simple connected {degree}-regular graph "
                f"on {size} vertices after {max_attempts} attempts "
                f"(seed={seed})"
            )
        self._degree_parameter = degree
        self._construction_seed = seed
        arcs: List[Arc] = []
        for u, v in sorted(edges):
            arcs.append((u, v))
            arcs.append((v, u))
        super().__init__(size, arcs,
                         name=f"random-regular(n={size},d={degree},seed={seed})")

    @property
    def regular_degree(self) -> int:
        """The regularity parameter ``d`` (every agent has ``d`` neighbors)."""
        return self._degree_parameter

    @property
    def construction_seed(self) -> int:
        """The seed the pairing-model construction was derived from."""
        return self._construction_seed


def _sample_regular_edges(size: int, degree: int,
                          rng: RandomSource) -> "Set[Tuple[int, int]] | None":
    """One pairing-model attempt; ``None`` when the stub pool saturates."""
    stubs = [vertex for vertex in range(size) for _ in range(degree)]
    edges: Set[Tuple[int, int]] = set()
    stalled = 0
    while stubs:
        first = rng.randrange(len(stubs))
        second = rng.randrange(len(stubs))
        u, v = stubs[first], stubs[second]
        edge = (u, v) if u < v else (v, u)
        if first == second or u == v or edge in edges:
            stalled += 1
            if stalled > _MAX_STALLED_DRAWS:
                return None
            continue
        stalled = 0
        edges.add(edge)
        # Pop the higher index first so the lower one stays valid.
        for position in sorted((first, second), reverse=True):
            stubs[position] = stubs[-1]
            stubs.pop()
    return edges


def _is_connected(size: int, edges: Set[Tuple[int, int]]) -> bool:
    adjacency: List[List[int]] = [[] for _ in range(size)]
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    visited = {0}
    frontier = [0]
    while frontier:
        current = frontier.pop()
        for neighbor in adjacency[current]:
            if neighbor not in visited:
                visited.add(neighbor)
                frontier.append(neighbor)
    return len(visited) == size
