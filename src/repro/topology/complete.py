"""Complete-graph populations.

Most of the population-protocol literature studies complete graphs (every
ordered pair of distinct agents may interact).  The target paper works on
rings, but the complete graph is provided both as a substrate for sanity
checks of the simulation engine and because the Table-1 discussion contrasts
ring results against the complete-graph impossibility of SS-LE without extra
assumptions.

The arc set is *implicit*: a complete graph on ``n`` agents has ``n*(n-1)``
arcs, which at ``n = 10^4`` is ~10^8 tuples nobody should ever allocate just
so a scheduler can index them uniformly.  :class:`CompleteGraph` therefore
answers every :class:`~repro.topology.graph.Population` query in closed form
(``arc_by_index``, ``sample_arc``, neighbors, degrees) and only materializes
the full arc list if the :attr:`arcs` property is explicitly read.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.errors import InvalidParameterError, TopologyError
from repro.topology.graph import Arc, Population


class CompleteGraph(Population):
    """Complete population: every ordered pair of distinct agents is an arc."""

    def __init__(self, size: int) -> None:
        if size < 2:
            raise InvalidParameterError(f"a complete graph needs at least 2 agents, got {size}")
        # Deliberately does NOT call Population.__init__: the base constructor
        # materializes and validates an explicit arc list, which is exactly
        # what this class exists to avoid.  Every method of Population that
        # touches ``_arcs`` is overridden below with a closed form.
        self._size = size
        self._name = f"complete(n={size})"
        self._materialized: Optional[Tuple[Arc, ...]] = None

    # ------------------------------------------------------------------ #
    # Arc access, in closed form
    # ------------------------------------------------------------------ #
    @property
    def arcs(self) -> Tuple[Arc, ...]:
        """The full arc list, materialized lazily on first access.

        Prefer :meth:`arc_by_index` / :meth:`sample_arc`, which never
        allocate; this property exists for callers that genuinely need the
        whole enumeration (tests, exhaustive analyses).
        """
        if self._materialized is None:
            self._materialized = tuple(
                (initiator, responder)
                for initiator in range(self._size)
                for responder in range(self._size)
                if initiator != responder
            )
        return self._materialized

    @property
    def num_arcs(self) -> int:
        return self._size * (self._size - 1)

    @property
    def has_materialized_arcs(self) -> bool:
        return self._materialized is not None

    def arc_by_index(self, index: int) -> Arc:
        """Closed-form indexing matching the eager enumeration order.

        Arc ``index`` has initiator ``index // (n-1)``; the responder is the
        ``index % (n-1)``-th agent of ``0..n-1`` with the initiator skipped.
        """
        if not 0 <= index < self.num_arcs:
            raise TopologyError(
                f"arc index {index} outside [0, {self.num_arcs}) for {self._name!r}"
            )
        initiator, offset = divmod(index, self._size - 1)
        responder = offset + 1 if offset >= initiator else offset
        return (initiator, responder)

    def numpy_endpoints(self, indices):
        """Closed-form vectorized :meth:`arc_by_index` (no materialization).

        A complete graph's ``n*(n-1)`` arcs must never be materialized just
        to be gathered from, so the index arithmetic of :meth:`arc_by_index`
        is applied to the whole index array at once.
        """
        import numpy

        initiators, offsets = numpy.divmod(
            numpy.asarray(indices, dtype=numpy.int64), self._size - 1
        )
        responders = offsets + (offsets >= initiators)
        return initiators, responders

    # ------------------------------------------------------------------ #
    # Population queries, in closed form
    # ------------------------------------------------------------------ #
    def out_neighbors(self, agent: int) -> List[int]:
        self._check_agent(agent)
        return [other for other in range(self._size) if other != agent]

    def in_neighbors(self, agent: int) -> List[int]:
        self._check_agent(agent)
        return [other for other in range(self._size) if other != agent]

    def degree(self, agent: int) -> int:
        self._check_agent(agent)
        return 2 * (self._size - 1)

    def has_arc(self, initiator: int, responder: int) -> bool:
        return (
            0 <= initiator < self._size
            and 0 <= responder < self._size
            and initiator != responder
        )
