"""Complete-graph populations.

Most of the population-protocol literature studies complete graphs (every
ordered pair of distinct agents may interact).  The target paper works on
rings, but the complete graph is provided both as a substrate for sanity
checks of the simulation engine and because the Table-1 discussion contrasts
ring results against the complete-graph impossibility of SS-LE without extra
assumptions.
"""

from __future__ import annotations

from repro.core.errors import InvalidParameterError
from repro.topology.graph import Population


class CompleteGraph(Population):
    """Complete population: every ordered pair of distinct agents is an arc."""

    def __init__(self, size: int) -> None:
        if size < 2:
            raise InvalidParameterError(f"a complete graph needs at least 2 agents, got {size}")
        arcs = [
            (initiator, responder)
            for initiator in range(size)
            for responder in range(size)
            if initiator != responder
        ]
        super().__init__(size, arcs, name=f"complete(n={size})")
