"""The :class:`TopologySpec` registry: every runnable population family, by name.

The protocol registry (:mod:`repro.api.registry`) made protocols declarative;
this module does the same for population graphs.  A :class:`TopologySpec`
names one parameterized factory — ``directed-ring``, ``undirected-ring``,
``complete``, ``torus``, ``random-regular`` — and :func:`build_topology`
constructs a validated :class:`~repro.topology.graph.Population` from
``(name, n, **params)``.  The experiment stack selects populations through
this registry end-to-end: :class:`~repro.api.config.ExperimentConfig`
carries ``(topology, topology_params)``, the trial executor rebuilds the
population from them in every worker (so parallel runs are bit-identical to
serial ones), the fluent builder exposes ``.on_torus()`` /
``.on_complete()`` / ``.on_topology()``, and the CLI accepts
``--topology name[:key=value,...]`` via :func:`parse_topology`.

Registering a new topology is one :func:`register_topology` call; nothing in
the executor, builder, or CLI needs editing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from repro.core.errors import InvalidParameterError, TopologyError
from repro.topology.complete import CompleteGraph
from repro.topology.graph import Population
from repro.topology.random_regular import RandomRegularGraph, require_regular_parameters
from repro.topology.ring import DirectedRing, UndirectedRing
from repro.topology.torus import Torus2D, require_torus_dimensions

#: The topology every spec historically ran on; the default everywhere.
DEFAULT_TOPOLOGY = "directed-ring"


@dataclass(frozen=True)
class TopologySpec:
    """One named, parameterized population family."""

    name: str
    summary: str
    #: ``factory(n, **params)`` -> Population; must validate its inputs and
    #: raise InvalidParameterError/TopologyError with actionable messages.
    factory: Callable[..., Population]
    #: Accepted keyword parameters mapped to one-line descriptions.
    params: Mapping[str, str] = field(default_factory=dict)
    supported_note: str = "any population size n >= 2"
    #: Optional ``validator(n, **params)`` that raises exactly when the
    #: factory would, *without* constructing the population.  Families whose
    #: construction does real work (random-regular's pairing-model sampling)
    #: provide one so pre-run validation stays cheap; when absent,
    #: :meth:`validate` falls back to building and discarding an instance.
    validator: "Callable[..., None] | None" = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("TopologySpec.name must be non-empty")

    def require_params(self, params: Mapping[str, object]) -> None:
        unknown = sorted(set(params) - set(self.params))
        if unknown:
            accepted = sorted(self.params) or ["<none>"]
            raise TopologyError(
                f"topology {self.name!r} does not accept parameter(s) "
                f"{', '.join(unknown)}; accepted: {', '.join(accepted)}"
            )

    def validate(self, n: int, **params: object) -> None:
        """Raise exactly when :meth:`build` would, without building."""
        self.require_params(params)
        if self.validator is not None:
            self.validator(n, **params)
        else:
            self.factory(n, **params)

    def build(self, n: int, **params: object) -> Population:
        """Construct the population for ``n`` agents (validates ``params``)."""
        self.require_params(params)
        return self.factory(n, **params)


# ---------------------------------------------------------------------- #
# The registry
# ---------------------------------------------------------------------- #
_TOPOLOGIES: Dict[str, TopologySpec] = {}


def register_topology(spec: TopologySpec, replace: bool = False) -> TopologySpec:
    """Add a topology spec; ``replace=False`` rejects duplicates."""
    if not replace and spec.name in _TOPOLOGIES:
        raise ValueError(f"topology {spec.name!r} is already registered")
    _TOPOLOGIES[spec.name] = spec
    return spec


def unregister_topology(name: str) -> None:
    """Remove a topology spec (test hygiene; unknown names are ignored)."""
    _TOPOLOGIES.pop(name, None)


def get_topology_spec(name: str) -> TopologySpec:
    """Look up a topology by name, with the known names in the error message.

    Raises :class:`TopologyError` (a ``ValueError``) like every other
    topology-layer validation, so callers handle one exception family.
    """
    try:
        return _TOPOLOGIES[name]
    except KeyError:
        raise TopologyError(
            f"unknown topology {name!r}; registered: {', '.join(topology_names())}"
        ) from None


def topology_names() -> List[str]:
    """Registered topology names, sorted."""
    return sorted(_TOPOLOGIES)


def list_topologies() -> List[TopologySpec]:
    """All registered topology specs, sorted by name."""
    return [_TOPOLOGIES[name] for name in topology_names()]


def build_topology(name: str, n: int, **params: object) -> Population:
    """Construct a registered topology for ``n`` agents."""
    return get_topology_spec(name).build(n, **params)


def validate_topology(name: str, n: int, **params: object) -> None:
    """Raise exactly when :func:`build_topology` would, without building.

    The pre-run fail-fast hook for the CLI and the builder: name, parameter
    names, and ``(n, params)`` feasibility are all checked, but nothing is
    constructed — sampled families (random-regular) are only built once per
    trial, in the worker.
    """
    get_topology_spec(name).validate(n, **params)


def parse_topology(text: str) -> Tuple[str, Dict[str, int]]:
    """Parse the CLI spelling ``name[:key=value,...]`` (values are integers).

    >>> parse_topology("torus:width=4,height=3")
    ('torus', {'width': 4, 'height': 3})

    Only syntax is validated here; the name and parameter names are checked
    against the registry by :func:`build_topology` so the error can list what
    is actually registered.
    """
    name, _, raw_params = text.partition(":")
    name = name.strip()
    if not name:
        raise TopologyError(f"empty topology name in {text!r}")
    params: Dict[str, int] = {}
    if raw_params.strip():
        for part in raw_params.split(","):
            key, separator, value = part.partition("=")
            key = key.strip()
            if not separator or not key:
                raise TopologyError(
                    f"malformed topology parameter {part!r} in {text!r} "
                    "(expected key=value)"
                )
            try:
                params[key] = int(value)
            except ValueError:
                raise TopologyError(
                    f"topology parameter {key!r} must be an integer, "
                    f"got {value.strip()!r}"
                ) from None
    return name, params


# ---------------------------------------------------------------------- #
# Built-in topologies
# ---------------------------------------------------------------------- #
def _minimum_size_validator(minimum: int, message: str) -> Callable[[int], None]:
    """A construction-free validator for families whose only constraint is a
    minimum size; ``message`` mirrors the constructor's error wording."""

    def validator(n: int) -> None:
        if n < minimum:
            raise InvalidParameterError(message.format(n=n))

    return validator


def _torus_dimensions(n: int, width: "int | None",
                      height: "int | None") -> Tuple[int, int]:
    """Resolve ``(width, height)`` for ``n`` agents.

    With neither dimension given, the most-square factorization with both
    factors >= 3 is chosen; with one given, the other is ``n`` divided by it;
    with both given, their product must be ``n``.
    """
    if width is None and height is None:
        for candidate in range(math.isqrt(n), 2, -1):
            if n % candidate == 0 and n // candidate >= 3:
                return candidate, n // candidate
        raise TopologyError(
            f"n={n} has no torus factorization with both dimensions >= 3; "
            "choose n = width*height (e.g. 9, 12, 15, 16) or pass explicit "
            "torus:width=...,height=... parameters"
        )
    if width is None:
        width = _exact_quotient(n, height, "height")
    elif height is None:
        height = _exact_quotient(n, width, "width")
    if width * height != n:
        raise TopologyError(
            f"torus dimensions {width}x{height} do not match n={n} "
            f"(need width*height == n)"
        )
    return width, height


def _exact_quotient(n: int, divisor: int, label: str) -> int:
    if divisor < 1 or n % divisor != 0:
        raise TopologyError(
            f"torus {label}={divisor} does not divide n={n}"
        )
    return n // divisor


def _torus_factory(n: int, width: "int | None" = None,
                   height: "int | None" = None) -> Torus2D:
    resolved_width, resolved_height = _torus_dimensions(n, width, height)
    return Torus2D(resolved_width, resolved_height)


def _torus_validator(n: int, width: "int | None" = None,
                     height: "int | None" = None) -> None:
    require_torus_dimensions(*_torus_dimensions(n, width, height))


def _register_builtin_topologies() -> None:
    register_topology(TopologySpec(
        name="directed-ring",
        summary="the paper's model: u_0 -> u_1 -> ... -> u_{n-1} -> u_0",
        factory=DirectedRing,
        validator=_minimum_size_validator(
            2, "a ring needs at least 2 agents, got {n}"),
        supported_note="any ring size n >= 2",
    ))
    register_topology(TopologySpec(
        name="undirected-ring",
        summary="ring with both arc directions (the Section-5 substrate)",
        factory=UndirectedRing,
        validator=_minimum_size_validator(
            3, "an undirected ring needs at least 3 agents to be simple, got {n}"),
        supported_note="ring sizes n >= 3",
    ))
    register_topology(TopologySpec(
        name="complete",
        summary="every ordered pair interacts (the SS-LE literature's default)",
        factory=CompleteGraph,
        validator=_minimum_size_validator(
            2, "a complete graph needs at least 2 agents, got {n}"),
        supported_note="any population size n >= 2",
    ))
    register_topology(TopologySpec(
        name="torus",
        summary="2D wraparound grid, both arc directions per lattice edge",
        factory=_torus_factory,
        validator=_torus_validator,
        params={
            "width": "number of columns (default: most-square factor of n)",
            "height": "number of rows (default: n divided by the width)",
        },
        supported_note="n = width*height with both dimensions >= 3",
    ))
    register_topology(TopologySpec(
        name="random-regular",
        summary="seeded pairing-model random d-regular graph, both arc "
                "directions per sampled edge",
        params={
            "degree": "regularity d, 2 <= d < n with n*d even (default: 4)",
            "seed": "construction seed of the pairing model (default: 0)",
        },
        factory=RandomRegularGraph,
        validator=require_regular_parameters,
        supported_note="2 <= degree < n with n*degree even",
    ))


_register_builtin_topologies()
