"""Content-addressed results store: trial batches keyed by what produced them.

Every trial in this repo is a pure function of ``(spec name, population
size, family, ExperimentConfig)``: the per-trial seeds are derived from the
config's master seed by a stable blake2b chain (:meth:`RandomSource.spawn`),
so running the same batch twice — on any engine tier, serially or across
worker processes — produces bit-identical :class:`TrialResult` records.
This module exploits that purity: a batch's results are persisted under a
digest of exactly the inputs that determine them, and a later run with the
same identity is served from disk instead of recomputed.

Key derivation
--------------
:func:`batch_digest` hashes, with blake2b, the canonical JSON of

* the spec name, the population size, the configuration family, and the
  resolved RNG label (the label is part of the seed-derivation chain, so
  two batches that differ only in it must never share records);
* the :class:`ExperimentConfig` fields that affect trial outcomes —
  everything except ``sizes`` (the population size is keyed separately),
  ``trials`` (the trial *count* is extendable: seeds are derived per trial
  index, so a stored 20-trial batch is a bit-identical prefix of the same
  batch at 50 trials), and ``engine`` (every engine tier produces identical
  results by construction — asserted by the cross-engine identity suites —
  so a batch computed on one tier serves requests for any other); future
  config fields are included automatically, mirroring
  :meth:`ExperimentConfig.cache_key`;
* :data:`SCHEMA_VERSION`, so a record format change invalidates every old
  record instead of misreading it.

Records
-------
One JSON file per digest under ``<root>/<digest[:2]>/<digest>.json``,
written atomically (temp file + rename).  Records carry the full key fields
and the engine that actually executed each trial, so ``repro-ssle cache
info`` can explain any record and tests can assert a warm hit is
bit-identical to a cold run.  A record that fails validation — truncated,
garbage, wrong schema, non-contiguous trial indices — is treated as a miss
and recomputed (and overwritten on the next write), never raised.

The store is off by default: it activates only through an explicit path
(CLI ``--store`` / the ``store=`` parameters) or the :data:`ENV_VAR`
environment variable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

try:  # advisory per-record write locks (POSIX; saves degrade gracefully)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.api.config import ExperimentConfig
from repro.api.executor import PhaseResult, TrialResult

#: Bump on any record-format or key-derivation change: old records then
#: miss (different digests) instead of being misread.
SCHEMA_VERSION = 1

#: Environment variable naming the default store root (CLI ``--store`` and
#: explicit ``store=`` arguments take precedence).
ENV_VAR = "REPRO_STORE"

#: Config fields that do not affect per-trial outcomes (see module docstring).
_NON_IDENTITY_FIELDS = frozenset({"sizes", "trials", "engine"})

#: TrialResult fields, in record order, with their required JSON types.
_TRIAL_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("trial", int),
    ("steps", int),
    ("converged", bool),
    ("wall_time", float),
    ("engine", str),
    ("protocol_name", str),
)

#: PhaseResult fields with their required JSON types (scenario records only).
_PHASE_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("phase", int),
    ("perturbation", str),
    ("steps", int),
    ("converged", bool),
    ("engine", str),
    ("population_size", int),
)


def _jsonify(value: object) -> object:
    """Tuples (arbitrarily nested) as JSON lists, everything else verbatim."""
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    return value


def canonical_config(config: ExperimentConfig) -> Dict[str, object]:
    """The config's identity-bearing fields as a JSON-ready mapping.

    Derived from the dataclass fields minus :data:`_NON_IDENTITY_FIELDS`,
    so a future config field can never be silently left out of the store
    key (the same guarantee :meth:`ExperimentConfig.cache_key` gives the
    in-process caches).

    The ``scenario`` field is omitted when it is the canonical empty tuple:
    a legacy single-convergence config therefore hashes to exactly the
    digest it had before scenarios existed, keeping every pre-scenario
    record warm.  Non-empty scenarios *are* hashed (nested tuples as JSON
    lists), so a perturb-and-re-converge run never collides with the plain
    run it started from.
    """
    payload: Dict[str, object] = {}
    for field in dataclasses.fields(config):
        if field.name in _NON_IDENTITY_FIELDS:
            continue
        value = getattr(config, field.name)
        if field.name == "scenario" and value == ():
            continue
        payload[field.name] = _jsonify(value)
    return payload


def batch_digest(spec_name: str, population_size: int, family: str,
                 rng_label: str, config: ExperimentConfig) -> str:
    """The content address of one trial batch (stable hex digest)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "spec": spec_name,
        "population_size": population_size,
        "family": family,
        "rng_label": rng_label,
        "config": canonical_config(config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


class ResultsStore:
    """A directory of content-addressed trial-batch records.

    ``write=False`` makes the store read-only: cached trials are still
    served, but completed batches are not persisted (CLI
    ``--no-store-write``).  The ``served``/``executed`` counters are
    maintained by the executor so callers — the CLI's JSON payloads, the CI
    reuse gate — can assert how much work a run actually did.
    """

    #: How long :meth:`save` waits for a record's advisory lock before
    #: falling back to the unlocked verify-and-retry path (seconds). A
    #: writer that died holding the lock — SIGKILL mid-write-back — must
    #: not wedge every later writer of that record forever.
    DEFAULT_LOCK_TIMEOUT = 10.0

    def __init__(self, root: "str | os.PathLike", write: bool = True,
                 lock_timeout: Optional[float] = None) -> None:
        self.root = Path(root)
        self.write = write
        self.lock_timeout = (self.DEFAULT_LOCK_TIMEOUT
                             if lock_timeout is None else lock_timeout)
        #: Trials served from cached records during this process's runs.
        self.served = 0
        #: Trials actually executed (cache misses and top-ups).
        self.executed = 0

    @classmethod
    def from_env(cls, write: bool = True) -> "Optional[ResultsStore]":
        """The store named by :data:`ENV_VAR`, or ``None`` when unset/empty."""
        root = os.environ.get(ENV_VAR, "").strip()
        return cls(root, write=write) if root else None

    # ------------------------------------------------------------------ #
    # Record IO
    # ------------------------------------------------------------------ #
    def record_path(self, digest: str) -> Path:
        """Where ``digest``'s record lives (two-level fan-out directory)."""
        return self.root / digest[:2] / f"{digest}.json"

    def load(self, digest: str) -> Optional[List[TrialResult]]:
        """The stored trials for ``digest``, or ``None`` on miss/corruption.

        Trials come back ordered by trial index, a contiguous prefix
        ``0..m-1`` — the validated invariant that makes partial top-ups
        (extend a stored batch by running only the missing tail) sound.
        """
        record = self.record(digest)
        if record is None:
            return None
        return validate_trials(record.get("trials"))

    def record(self, digest: str) -> Optional[Dict[str, object]]:
        """The raw record document for ``digest`` (schema- and digest-checked),
        or ``None`` on miss/corruption.  What the fabric's store server puts
        on the wire; :meth:`load` is this plus trial validation."""
        record = self._read_record(self.record_path(digest))
        if record is None or record.get("digest") != digest:
            return None
        return record

    @contextmanager
    def _record_lock(self, path: Path):
        """Advisory exclusive lock serializing writers of one record.

        Concurrent top-ups of the same record group (two sweeps, two service
        jobs) each merge cache-plus-fresh snapshots that may lag each other;
        the lock makes the read-compare-replace in :meth:`save` atomic so
        the longer record always survives.

        Yields whether the lock was actually acquired.  The wait is
        *bounded* by ``lock_timeout``: a writer that died holding the lock
        (kill -9 mid-write-back leaves the flock held until its process is
        reaped — or forever, if the handle leaked to a live descendant)
        must not wedge every later writer.  On timeout — or without
        ``fcntl`` at all — the caller proceeds unlocked and compensates
        with read-compare-retry (see :meth:`_replace_record`).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield False
            return
        lock_path = path.parent / f".{path.stem}.lock"
        with open(lock_path, "w") as handle:
            deadline = time.monotonic() + max(0.0, self.lock_timeout)
            locked = False
            while True:
                try:
                    fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    locked = True
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        break
                    time.sleep(min(0.05, self.lock_timeout or 0.05))
            try:
                yield locked
            finally:
                if locked:
                    fcntl.flock(handle, fcntl.LOCK_UN)

    def save(self, digest: str, meta: Dict[str, object],
             trials: Sequence[TrialResult]) -> None:
        """Persist one batch record atomically (no-op for read-only stores).

        Saves never shrink a record: under the per-record lock, a valid
        existing record holding at least as many trials wins and the save
        is skipped — sound because every record of one digest is a prefix
        of the same deterministic trial sequence, so the longer of two
        concurrent write-backs is a superset of the shorter.  When the lock
        cannot be acquired within ``lock_timeout`` (a writer died holding
        it), the save proceeds unlocked and re-verifies after publishing —
        see :meth:`_replace_record`.
        """
        if not self.write:
            return
        path = self.record_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._record_lock(path) as locked:
            self._replace_record(digest, meta, trials, path, locked=locked)

    #: Unlocked publishes re-verify this many times before conceding the
    #: race (the record stays valid either way — at worst shorter, which a
    #: future run tops up).
    _UNLOCKED_RETRIES = 3

    def _replace_record(self, digest: str, meta: Dict[str, object],
                        trials: Sequence[TrialResult], path: Path,
                        locked: bool = True) -> None:
        existing = self._read_record(path)
        if existing is not None and existing.get("digest") == digest:
            current = validate_trials(existing.get("trials"))
            if current is not None and len(current) >= len(trials):
                return
        self._publish_record(digest, meta, trials, path)
        if locked:
            return
        # Unlocked fallback: without the flock, a concurrent writer may
        # replace our freshly-published record with a *shorter* one (its
        # read-compare predates our publish).  Read-compare-retry restores
        # never-shrink: all records of one digest are prefixes of the same
        # deterministic sequence, so republishing the longer is always safe.
        for _ in range(self._UNLOCKED_RETRIES):
            published = self._read_record(path)
            current = (validate_trials(published.get("trials"))
                       if published is not None
                       and published.get("digest") == digest else None)
            if current is not None and len(current) >= len(trials):
                return
            self._publish_record(digest, meta, trials, path)

    def _publish_record(self, digest: str, meta: Dict[str, object],
                        trials: Sequence[TrialResult], path: Path) -> None:
        record = {
            "schema": SCHEMA_VERSION,
            "digest": digest,
            **meta,
            "versions": {
                "schema": SCHEMA_VERSION,
                "python": platform.python_version(),
            },
            "trials": [result.to_dict() for result in trials],
        }
        # Atomic publish: a reader (or a crash) can never observe a
        # half-written record — it sees the old record or the new one.
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, prefix=f".{digest}.", suffix=".tmp",
            delete=False, encoding="utf-8",
        )
        try:
            with handle:
                json.dump(record, handle, sort_keys=True, indent=1)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise

    # ------------------------------------------------------------------ #
    # Inspection / maintenance (the `repro-ssle cache` commands)
    # ------------------------------------------------------------------ #
    def record_digests(self) -> List[str]:
        """Digests of every well-named record file under the root, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.root.glob("??/*.json")
            if path.stem.startswith(path.parent.name)
        )

    def records(self) -> List[Dict[str, object]]:
        """One summary row per stored record (corrupt records flagged).

        ``age_days`` is the record file's age by mtime — the time of the
        last write-back, which is what the ``--older-than`` GC evicts by.
        """
        now = time.time()  # repro: allow[REP004] (record age, not identity)
        rows: List[Dict[str, object]] = []
        for digest in self.record_digests():
            path = self.record_path(digest)
            record = self._read_record(path)
            trials = (validate_trials(record.get("trials"))
                      if record is not None and record.get("digest") == digest
                      else None)
            try:
                stat = path.stat()
            except OSError:
                continue  # raced away by a concurrent clear
            age_days = round(max(0.0, now - stat.st_mtime) / 86400.0, 4)
            if trials is None:
                rows.append({"digest": digest, "corrupt": True,
                             "bytes": stat.st_size, "age_days": age_days})
                continue
            rows.append({
                "digest": digest,
                "corrupt": False,
                "spec": record.get("spec"),
                "population_size": record.get("population_size"),
                "family": record.get("family"),
                "trials": len(trials),
                "converged": sum(1 for trial in trials if trial.converged),
                "engines": sorted({trial.engine for trial in trials}),
                "bytes": stat.st_size,
                "age_days": age_days,
            })
        return rows

    def record_info(self, digest_prefix: str) -> Dict[str, object]:
        """The full record whose digest starts with ``digest_prefix``.

        Raises :class:`KeyError` on no match and :class:`ValueError` on an
        ambiguous prefix, with the candidates named.
        """
        matches = [digest for digest in self.record_digests()
                   if digest.startswith(digest_prefix)]
        if not matches:
            raise KeyError(
                f"no record with digest prefix {digest_prefix!r} in {self.root}"
            )
        if len(matches) > 1:
            raise ValueError(
                f"digest prefix {digest_prefix!r} is ambiguous: "
                f"{', '.join(matches)}"
            )
        record = self._read_record(self.record_path(matches[0]))
        if record is None:
            return {"digest": matches[0], "corrupt": True}
        record.setdefault("corrupt",
                          validate_trials(record.get("trials")) is None)
        return record

    def clear(self, digest_prefix: str = "",
              older_than_days: Optional[float] = None,
              max_bytes: Optional[int] = None) -> int:
        """Delete records and count them.

        ``digest_prefix`` restricts deletion to matching digests;
        ``older_than_days`` keeps any record written (or last topped up —
        the mtime of its file) more recently than that many days ago.  The
        two compose, so ``cache clear --older-than 30`` is the store's
        age-based GC policy.

        ``max_bytes`` switches from "delete everything that matches" to a
        size budget: the matching records are evicted oldest-first (by file
        mtime, i.e. least recently written back) until the ones remaining
        total at most that many bytes — ``cache clear --max-bytes N`` is
        the store's size-capped GC policy.  It composes with the other two
        filters: only matching records are counted against, or evicted for,
        the budget.
        """
        if older_than_days is not None and older_than_days < 0:
            raise ValueError(
                f"older_than_days must be >= 0, got {older_than_days}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        now = time.time()  # repro: allow[REP004] (GC age policy, not identity)
        matches: List[Tuple[float, int, Path]] = []
        for digest in self.record_digests():
            if not digest.startswith(digest_prefix):
                continue
            path = self.record_path(digest)
            try:
                stat = path.stat()
            except OSError:
                continue  # raced away by a concurrent clear
            if older_than_days is not None:
                if (now - stat.st_mtime) / 86400.0 < older_than_days:
                    continue
            matches.append((stat.st_mtime, stat.st_size, path))
        if max_bytes is not None:
            # Oldest-first eviction until the matching set fits the budget.
            matches.sort(key=lambda entry: entry[0])
            excess = sum(size for _, size, _ in matches) - max_bytes
            victims = []
            for mtime, size, path in matches:
                if excess <= 0:
                    break
                victims.append((mtime, size, path))
                excess -= size
            matches = victims
        removed = 0
        for _, _, path in matches:
            try:
                path.unlink()
            except OSError:
                continue  # raced away by a concurrent clear
            lock = path.parent / f".{path.stem}.lock"
            if lock.exists():  # drop the record's advisory lock file too
                lock.unlink()
            removed += 1
        return removed

    def summary(self) -> Dict[str, object]:
        """Whole-store totals: record/trial counts, bytes, and the age range.

        ``age_days`` spans the youngest to the oldest record (by file
        mtime, i.e. last write-back); ``None`` for an empty store.  This is
        what ``repro-ssle cache info`` (without a digest) reports, and what
        an operator consults before ``cache clear --older-than``.
        """
        rows = self.records()
        ages = [row["age_days"] for row in rows]
        return {
            "root": str(self.root),
            "records": len(rows),
            "corrupt": sum(1 for row in rows if row["corrupt"]),
            "trials": sum(row.get("trials", 0) for row in rows),
            "bytes": sum(row["bytes"] for row in rows),
            "age_days": ({"newest": min(ages), "oldest": max(ages)}
                         if ages else None),
        }

    def stats(self) -> Dict[str, object]:
        """This process's reuse counters plus the store location (JSON-ready)."""
        return {
            "root": str(self.root),
            "write": self.write,
            "served": self.served,
            "executed": self.executed,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultsStore(root={str(self.root)!r}, write={self.write})"

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _read_record(path: Path) -> Optional[Dict[str, object]]:
        """Parse one record file; any defect is a miss, never an exception."""
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("schema") != SCHEMA_VERSION:
            return None
        return record


def validate_trials(raw: object) -> Optional[List[TrialResult]]:
    """Rebuild a record's trial list, or ``None`` when anything is off.

    Checks every field's presence and type and that the trial indices form
    the contiguous prefix ``0..m-1`` (partial top-ups extend records by
    index, so a gap would silently misattribute seeds to trials).
    """
    if not isinstance(raw, list):
        return None
    trials: List[TrialResult] = []
    for index, entry in enumerate(raw):
        if not isinstance(entry, dict):
            return None
        values = {}
        for name, kind in _TRIAL_FIELDS:
            value = entry.get(name)
            if kind is float and isinstance(value, int) and not isinstance(value, bool):
                value = float(value)
            if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
                return None
            values[name] = value
        if values["trial"] != index:
            return None
        phases = _validate_phases(entry.get("phases"))
        if phases is None:
            return None
        trials.append(TrialResult(phases=phases, **values))
    return trials


def _validate_phases(raw: object) -> Optional[Tuple[PhaseResult, ...]]:
    """Rebuild a trial's per-phase breakdown; ``None`` flags a corrupt record.

    Pre-scenario records carry no ``phases`` key at all — that (or an
    explicit empty list) is the valid legacy shape and maps to the empty
    tuple, so old records stay readable without a schema bump.
    """
    if raw is None:
        return ()
    if not isinstance(raw, list):
        return None
    phases: List[PhaseResult] = []
    for index, entry in enumerate(raw):
        if not isinstance(entry, dict):
            return None
        values = {}
        for name, kind in _PHASE_FIELDS:
            value = entry.get(name)
            if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
                return None
            values[name] = value
        if values["phase"] != index:
            return None
        phases.append(PhaseResult(**values))
    return tuple(phases)


def resolve_store(path: "str | os.PathLike | None" = None,
                  write: bool = True):
    """The store an explicit ``path`` or the environment selects (else ``None``).

    The precedence every entry point shares: an explicit path wins, the
    :data:`ENV_VAR` environment variable is the fallback, and with neither
    set the store is off and behavior is exactly pre-store.

    A value starting with ``http://`` — from either source — selects a
    :class:`repro.fabric.remote.RemoteStore` speaking to a
    ``repro-ssle store-serve`` daemon instead of a local directory, so
    every ``--store`` flag and the :data:`ENV_VAR` variable accept a URL
    transparently.  (``https://`` is rejected by the fabric transport with
    an explanation; a lab fabric speaks plain http.)
    """
    selected = str(path).strip() if path is not None else ""
    if not selected:
        selected = os.environ.get(ENV_VAR, "").strip()
    if not selected:
        return None
    if selected.startswith(("http://", "https://")):
        from repro.fabric.remote import RemoteStore  # lazy: avoids a cycle

        return RemoteStore(selected, write=write)
    return ResultsStore(selected, write=write)
