"""Content-addressed results store (see :mod:`repro.store.store`).

Public surface::

    from repro.store import ResultsStore, batch_digest, resolve_store

Pass a :class:`ResultsStore` (or construct one via :func:`resolve_store`)
to ``run_trials`` / ``run_batches`` / ``run_spec`` / the builder's
``.store()`` / ``scaling_series`` / ``build_table1`` to have trial batches
served from disk when their content address matches, with only missing
trials executed and results written back for the next run.
"""

from repro.store.store import (
    ENV_VAR,
    SCHEMA_VERSION,
    ResultsStore,
    batch_digest,
    canonical_config,
    resolve_store,
    validate_trials,
)

__all__ = [
    "ENV_VAR",
    "SCHEMA_VERSION",
    "ResultsStore",
    "batch_digest",
    "canonical_config",
    "resolve_store",
    "validate_trials",
]
