"""Shared run configuration for the experiment API.

:class:`ExperimentConfig` is the single bag of sweep parameters understood by
every layer of the stack — the :mod:`repro.api.registry` specs, the trial
executor, the fluent builder, and the legacy experiment harnesses (which
re-export it unchanged for backwards compatibility).  It is a frozen,
picklable dataclass so trial tasks can ship it to worker processes verbatim.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.rng import RandomSource
from repro.scenario.spec import normalize_scenario
from repro.topology.registry import DEFAULT_TOPOLOGY


@dataclass(frozen=True)
class ExperimentConfig:
    """Sweep parameters shared by the timing experiments.

    ``kappa_factor`` applies to ``P_PL`` only; the paper's constant is 32 but
    the default here is 4 so that the full sweep finishes in benchmark time —
    every report states the value used (the constant multiplies only the
    w.h.p. margin, not the asymptotic shape).

    ``engine`` selects the simulation engine for every trial: ``"auto"``
    (default) picks the fastest applicable tier — the vectorized ``numpy``
    engine when numpy is installed and the protocol's state space can be
    enumerated, the batched table-driven engine when it enumerates without
    numpy, the step loop otherwise; ``"step"`` forces the step loop;
    ``"batched"``/``"numpy"`` require that tier and error when it does not
    apply.  Every engine produces bit-identical trial results for the same
    seed.

    ``check_backoff`` turns on the geometric check-interval backoff in
    ``run_until``: the interval between stop-predicate evaluations starts at
    ``check_interval`` and doubles (up to an engine-shared cap) after every
    unsatisfied check.  Off by default — with it off, reported step counts
    are identical to all previous releases.

    ``topology`` names the population graph every trial runs on (a
    :mod:`repro.topology.registry` name; default: the paper's directed
    ring), and ``topology_params`` carries its constructor parameters as a
    sorted tuple of ``(name, value)`` pairs — a tuple, not a dict, so the
    config stays frozen, hashable, and picklable for the worker processes,
    which rebuild the population from these fields deterministically.

    ``scenario`` carries the canonical phased scenario (see
    :mod:`repro.scenario.spec`): a tuple of
    ``(perturbation, params, stop, budget)`` phase tuples.  It is
    normalized on construction, so the degenerate single-convergence
    scenario — however it was spelled — always canonicalizes to the empty
    tuple and keeps legacy configs' store digests byte-identical.
    """

    sizes: Sequence[int] = (8, 16, 32)
    trials: int = 3
    max_steps: int = 2_000_000
    check_interval: int = 128
    kappa_factor: int = 4
    seed: int = 2023
    engine: str = "auto"
    topology: str = DEFAULT_TOPOLOGY
    topology_params: Tuple[Tuple[str, int], ...] = ()
    check_backoff: bool = False
    scenario: Tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenario", normalize_scenario(self.scenario))

    def rng(self, label: str) -> RandomSource:
        """A reproducible random stream for one experiment component."""
        return RandomSource(self.seed).spawn(label)

    def topology_kwargs(self) -> Dict[str, int]:
        """The topology parameters as keyword arguments for the factory."""
        return dict(self.topology_params)

    def cache_key(self) -> Tuple:
        """A hashable identity for batch-level caches (``sizes`` tuple-ized).

        Two configs with equal keys produce identical trials, so batch
        resources compiled for one — shared encoders, worker-side config
        records — can serve the other.  Derived from the dataclass fields so
        a future field can never be silently left out of the identity.
        """
        return tuple(
            tuple(value) if isinstance(value, (list, range)) else value
            for value in (getattr(self, field.name)
                          for field in dataclasses.fields(self))
        )


def freeze_topology_params(params: "Dict[str, int] | None",
                           ) -> Tuple[Tuple[str, int], ...]:
    """Canonicalize a params dict into the frozen tuple-of-pairs form."""
    return tuple(sorted((params or {}).items()))
