"""The experiment API: registry, fluent builder, and parallel trial runner.

This package is the single entry point for running anything in the repo:

* :mod:`repro.api.registry` — a :class:`ProtocolSpec` per protocol, and the
  generic :func:`run_spec` that replaced the hand-written harness adapters;
* :mod:`repro.api.builder` — the fluent chain
  ``experiment("ppl").on_ring(64).from_adversarial().trials(8).run()``;
* :mod:`repro.api.executor` — deterministic serial/parallel trial execution;
* :mod:`repro.api.config` — the shared :class:`ExperimentConfig`.
"""

from repro.api.builder import ExperimentBuilder, ExperimentResult, experiment
from repro.api.config import ExperimentConfig
from repro.api.executor import (
    BatchRequest,
    TrialResult,
    TrialTask,
    execute_trial,
    run_batches,
    run_trials,
    trial_tasks,
)
from repro.api.registry import (
    ProtocolSpec,
    ensure_angluin_spec,
    evaluate_analytic,
    get_spec,
    list_specs,
    register,
    run_spec,
    runner_for,
    spec_names,
    unregister,
)

__all__ = [
    "BatchRequest",
    "ExperimentBuilder",
    "ExperimentConfig",
    "ExperimentResult",
    "ProtocolSpec",
    "TrialResult",
    "TrialTask",
    "ensure_angluin_spec",
    "evaluate_analytic",
    "execute_trial",
    "experiment",
    "get_spec",
    "list_specs",
    "register",
    "run_batches",
    "run_spec",
    "run_trials",
    "runner_for",
    "spec_names",
    "trial_tasks",
    "unregister",
]
