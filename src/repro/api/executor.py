"""Parallel trial runner: fan independent trials out over worker processes.

Every experiment in this package is, at bottom, a set of *independent*
trials — grouped into batches that share a protocol, population size, and
configuration.  This module turns batches into :class:`TrialTask` records
(primitive, picklable) and executes them either serially in-process or on a
:class:`concurrent.futures.ProcessPoolExecutor`.  One pool serves an
arbitrary mix of batches (:func:`run_batches`), so whole scaling sweeps and
Table-1 runs drain a single flat task list instead of idling the pool
between ``(protocol, n)`` points.

Determinism
-----------
Parallel execution is bit-for-bit identical to serial execution for the same
seed because all randomness is decided *before* the fan-out: the parent
process derives one configuration seed and one scheduler seed per trial from
the master seed (mirroring the spawn chain the serial
:func:`repro.analysis.convergence.measure_convergence` loop has always used)
and ships only those integers to the workers.  A worker reconstructs its
:class:`~repro.core.rng.RandomSource` streams from the integers, so the order
in which workers run — or whether they run in another process at all — cannot
change any trial's outcome.  Only wall-clock timings differ between modes.
Batches derive their seeds independently (the stream label is a pure function
of the batch's ``rng_label`` and ``n``), so a flat multi-batch task list is
seed-for-seed identical to running each batch alone.

Workers re-resolve the protocol spec *by name* from
:mod:`repro.api.registry`, so nothing protocol-specific (factories, stop
predicates, oracle simulations) ever crosses the process boundary; the shared
:class:`ExperimentConfig` of each batch crosses it once per worker (a pool
initializer argument), not once per trial.  Specs registered at import time
are therefore visible in every worker; specs registered dynamically at
runtime additionally require the ``fork`` start method (the default on
Linux, and forced below when available).

Shared encoder compilation
--------------------------
Table-driven trials used to recompile the same ``|Q|^2`` transition table
once per trial.  :func:`shared_encoder` compiles it once per
``(spec, n, config)`` batch into a small process-local cache, seeded to
cover the batch's adversarial families (see
:func:`repro.core.encoding.coverage_seeds`); the serial path reuses the
cache directly and, under ``fork``, warmed parents hand the compiled tables
(numpy arrays included) to every worker for free.  A trial whose initial
configuration the shared table does not cover silently recompiles its own —
sharing is an optimization, never a semantic change.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field as dataclass_field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.config import ExperimentConfig
from repro.core.rng import RandomSource


@dataclass(frozen=True)
class TrialTask:
    """One independent trial, fully described by picklable primitives."""

    spec_name: str
    population_size: int
    trial: int
    family: str
    configuration_seed: int
    scheduler_seed: int
    config: ExperimentConfig
    #: The resolved RNG stream label of the batch this trial belongs to.
    #: Part of the batch's identity (the seeds above are derived from it),
    #: which is how the results store addresses records; execution itself
    #: never reads it, so worker-side reconstructions may leave it empty.
    rng_label: str = ""


@dataclass(frozen=True)
class PhaseResult:
    """One scenario phase's breakdown within a :class:`TrialResult`.

    Lives here (not in :mod:`repro.scenario`) so the results store and the
    analysis layer can reconstruct stored trials without importing the
    scenario runtime.
    """

    #: Zero-based position of the phase in the scenario.
    phase: int
    #: Perturbation applied before this phase ran ("" for none).
    perturbation: str
    #: Steps this phase executed.
    steps: int
    #: True when the phase's stop condition was met inside its budget
    #: (always True for fixed-budget "run" phases).
    converged: bool
    #: Engine that executed this phase (a perturbation can force a tier
    #: change mid-scenario, e.g. corrupted states the shared table misses).
    engine: str = "step"
    #: Population size this phase ran at (churn changes it).
    population_size: int = 0

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial: steps to the stop predicate, or a budget miss.

    For scenario trials, ``steps``/``converged`` aggregate over the phases
    (total steps; every converge phase satisfied) and ``phases`` carries the
    per-phase breakdown; legacy single-convergence trials leave ``phases``
    empty and are byte-identical to all previous releases.
    """

    trial: int
    steps: int
    converged: bool
    wall_time: float
    #: Which engine actually executed the trial ("step", "batched", or
    #: "numpy") — observability for the auto engine's tier choice.  All
    #: engines produce identical steps/converged for the same seeds.
    #: Scenario trials whose phases ran on different tiers report "mixed".
    engine: str = "step"
    #: Display name of the protocol instance that ran.  The worker builds
    #: the protocol anyway, so reporting the name here lets aggregators
    #: (run_spec, the builder) resolve it without constructing a throwaway
    #: instance of their own before the fan-out.
    protocol_name: str = ""
    #: Per-phase breakdown of a scenario trial (empty for legacy trials).
    phases: Tuple[PhaseResult, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["phases"] = [dict(phase) for phase in payload["phases"]]
        return payload


@dataclass(frozen=True)
class BatchRequest:
    """One ``(protocol, n)`` point of a sweep, as the shared pool sees it.

    ``family``/``trials``/``rng_label`` default exactly like
    :func:`repro.api.registry.run_spec`'s parameters, so folding a sweep
    into requests reproduces the per-point random streams bit-for-bit.
    """

    spec_name: str
    population_size: int
    config: ExperimentConfig
    family: Optional[str] = None
    trials: Optional[int] = None
    rng_label: Optional[str] = None


def trial_tasks(
    spec_name: str,
    n: int,
    config: ExperimentConfig,
    family: str,
    trials: Optional[int] = None,
    rng_label: Optional[str] = None,
) -> List[TrialTask]:
    """Derive the per-trial seed pairs for one batch, in trial order.

    ``rng_label`` defaults to ``spec_name``; the harness shims override it to
    reproduce the exact random streams of the pre-registry adapters.
    """
    count = config.trials if trials is None else trials
    if count < 1:
        raise ValueError(f"trials must be >= 1, got {count}")
    label = rng_label or spec_name
    source = config.rng(f"{label}-{n}")
    tasks: List[TrialTask] = []
    for trial in range(count):
        trial_rng = source.spawn(f"trial-{trial}")
        tasks.append(
            TrialTask(
                spec_name=spec_name,
                population_size=n,
                trial=trial,
                family=family,
                configuration_seed=trial_rng.spawn("configuration").seed,
                scheduler_seed=trial_rng.spawn("scheduler").seed,
                config=config,
                rng_label=label,
            )
        )
    return tasks


# ---------------------------------------------------------------------- #
# Shared encoder compilation (one table per batch, not per trial)
# ---------------------------------------------------------------------- #
_ENCODER_CACHE: "Dict[Tuple, object]" = {}
_ENCODER_CACHE_LIMIT = 64

#: Cache value for "nothing to share, but the batch may still encode":
#: protocols without canonical seed states compile per trial from their
#: initial configurations, exactly as before encoder sharing existed.
UNSHARED = object()


def shared_encoder(spec_name: str, n: int, config: ExperimentConfig):
    """The batch-shared compiled encoder for ``(spec, n, config)``.

    Returns the compiled :class:`StateEncoder`, ``None`` when the batch is
    established not to enumerate (the auto engine's step fallback applies to
    every trial), or :data:`UNSHARED` when no batch-level seed states exist
    (base-class ``canonical_states``) — then each trial compiles from its
    own initial configuration, as it always did.  Entries are cached so
    repeated lookups stay O(1), with numpy tables materialized eagerly when
    numpy is installed so a parent that warms the cache before forking hands
    workers fully-compiled arrays.
    """
    key = (spec_name, n, config.cache_key())
    if key in _ENCODER_CACHE:
        return _ENCODER_CACHE[key]
    from repro.api.registry import get_spec
    from repro.core.encoding import StateEncoder, coverage_seeds
    from repro.core.fast_simulator import numpy_available

    spec = get_spec(spec_name)
    try:
        mode = spec.resolve_engine(config.engine)
    except ValueError:
        mode = "step"  # the executor's caller reports the error loudly
    if mode == "step":
        encoder = None
    else:
        protocol = spec.build_protocol(n, config)
        seeds = coverage_seeds(protocol)
        encoder = StateEncoder.try_build(protocol, seeds) if seeds else UNSHARED
        if encoder not in (None, UNSHARED) and numpy_available():
            encoder.numpy_tables()
    if len(_ENCODER_CACHE) >= _ENCODER_CACHE_LIMIT:
        _ENCODER_CACHE.pop(next(iter(_ENCODER_CACHE)))
    _ENCODER_CACHE[key] = encoder
    return encoder


def warm_shared_encoders(tasks: Sequence[TrialTask]) -> None:
    """Compile every distinct batch's shared encoder in this process.

    Called by :func:`run_trials` in the parent before the pool is created:
    under the ``fork`` start method the workers inherit the compiled tables,
    converting an O(trials * |Q|^2) compilation cost into O(|Q|^2) per batch.
    """
    seen = set()
    for task in tasks:
        key = (task.spec_name, task.population_size, task.config.cache_key())
        if key not in seen:
            seen.add(key)
            shared_encoder(task.spec_name, task.population_size, task.config)


def execute_trial(task: TrialTask) -> TrialResult:
    """Run one trial to its stop predicate (serial path and worker entry point).

    The engine comes from ``task.config.engine``: ``"auto"`` picks the
    fastest tier whose requirements the protocol meets (numpy, batched, step
    — see :meth:`repro.api.registry.ProtocolSpec.build_simulation`).  Either
    way the trial's random streams — and therefore its step count and
    outcome — are bit-identical.
    """
    from repro.api.registry import get_spec
    from repro.core.fast_simulator import BatchedSimulation, NumpySimulation

    spec = get_spec(task.spec_name)
    protocol = spec.build_protocol(task.population_size, task.config)
    population = spec.build_population(task.population_size, task.config)
    initial = spec.build_configuration(
        task.family, protocol, task.population_size,
        RandomSource(task.configuration_seed),
        population=population,
    )
    engine = task.config.engine
    encoder = None
    if spec.resolve_engine(engine) != "step":
        encoder = shared_encoder(task.spec_name, task.population_size, task.config)
        if encoder is UNSHARED:
            encoder = None  # no batch seeds: compile per trial, as always
        elif encoder is None and spec.resolve_engine(engine) == "auto":
            # The batch-level compilation already established that the state
            # space does not enumerate; skip re-proving it on every trial.
            engine = "step"
    if task.config.scenario:
        # Phased scenario: the runtime replays phase 0 exactly like the
        # legacy path below (same ingredients, same streams) and then
        # perturbs and re-converges per phase.  Imported lazily — the
        # runtime sits above this module in the import graph.
        from repro.scenario.runtime import execute_scenario

        started = time.perf_counter()
        outcome = execute_scenario(spec, task, protocol, population, initial,
                                   engine=engine, encoder=encoder)
        return TrialResult(
            trial=task.trial,
            steps=outcome.steps,
            converged=outcome.converged,
            wall_time=time.perf_counter() - started,
            engine=outcome.engine,
            protocol_name=outcome.protocol_name,
            phases=outcome.phases,
        )
    started = time.perf_counter()
    simulation = spec.build_simulation(
        protocol, population, initial, RandomSource(task.scheduler_seed),
        engine=engine, encoder=encoder,
    )
    predicate = spec.build_stop_predicate(protocol, population)
    run = simulation.run_until(
        predicate,
        max_steps=task.config.max_steps,
        check_interval=task.config.check_interval,
        check_backoff=task.config.check_backoff,
    )
    if isinstance(simulation, NumpySimulation):
        engine_name = "numpy"
    elif isinstance(simulation, BatchedSimulation):
        engine_name = "batched"
    else:
        engine_name = "step"
    return TrialResult(
        trial=task.trial,
        steps=run.steps,
        converged=run.satisfied,
        wall_time=time.perf_counter() - started,
        engine=engine_name,
        protocol_name=protocol.name,
    )


# ---------------------------------------------------------------------- #
# Pool plumbing
# ---------------------------------------------------------------------- #
def _pool_context():
    """Prefer ``fork`` so dynamically registered specs reach the workers.

    Linux only: macOS still offers ``fork`` but CPython switched its default
    to ``spawn`` there because forked children can abort inside system
    frameworks — respect the platform default everywhere else.
    """
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


#: Ceiling on the computed map chunksize: IPC amortization saturates quickly,
#: while unbounded chunks hand one worker a long run of same-batch expensive
#: trials in a heterogeneous sweep (the flat list is ordered batch-by-batch).
_MAX_CHUNKSIZE = 16


def _chunksize(task_count: int, pool_size: int) -> int:
    """Batch ~4 chunks per worker so small trials stop paying one IPC
    round-trip each, while load stays balanced across stragglers."""
    return max(1, min(task_count // (4 * pool_size), _MAX_CHUNKSIZE))


#: Worker-side registry of batch configs, filled once per worker by the pool
#: initializer — the config crosses the process boundary per worker, not per
#: trial (tasks then reference it by index).
_WORKER_CONFIGS: Dict[int, ExperimentConfig] = {}

#: A light task: every TrialTask field except the config, which is replaced
#: by its index into the initializer-shipped config table.
_LightTask = Tuple[int, str, int, int, str, int, int]


def _init_worker(configs: Dict[int, ExperimentConfig]) -> None:
    _WORKER_CONFIGS.clear()
    _WORKER_CONFIGS.update(configs)


def _execute_light(item: _LightTask) -> TrialResult:
    config_id, spec_name, n, trial, family, conf_seed, sched_seed = item
    return execute_trial(TrialTask(
        spec_name=spec_name,
        population_size=n,
        trial=trial,
        family=family,
        configuration_seed=conf_seed,
        scheduler_seed=sched_seed,
        config=_WORKER_CONFIGS[config_id],
    ))


def _result_stream(tasks: Sequence[TrialTask], workers: Optional[int],
                   pool: "ProcessPoolExecutor | None" = None):
    """Yield one :class:`TrialResult` per task, in task order.

    The execution core shared by the plain and store-backed paths: serial
    in-process for ``workers`` ``None``/``<= 1``, one process pool
    otherwise.  A generator so the store-backed caller can persist each
    batch the moment its last trial completes — an interrupted sweep keeps
    every finished point.

    ``pool`` hands execution to a caller-owned, long-lived executor (the
    experiment service's warm pool) instead of creating one: tasks then
    cross the process boundary whole (the pool's workers were initialized
    long before this run's configs existed), and the pool is never shut
    down here — many concurrent runs may share it.

    On ``KeyboardInterrupt`` — or when the caller closes the generator
    early — an owned pool is shut down *cleanly*: queued trials are
    cancelled, in-flight trials finish so the workers exit without
    corruption, and the interrupt is re-raised for the caller's write-back.
    """
    if pool is not None:
        if tasks:
            yield from pool.map(
                execute_trial, tasks,
                chunksize=_chunksize(len(tasks),
                                     getattr(pool, "_max_workers", None) or 1))
        return
    if workers is None or workers <= 1 or len(tasks) <= 1:
        for task in tasks:
            yield execute_trial(task)
        return
    # Compile each batch's shared encoder up front: under fork the workers
    # inherit the tables; under spawn each worker compiles once per batch.
    warm_shared_encoders(tasks)
    configs: List[ExperimentConfig] = []
    config_ids: Dict[Tuple, int] = {}
    items: List[_LightTask] = []
    for task in tasks:
        key = task.config.cache_key()
        config_id = config_ids.get(key)
        if config_id is None:
            config_id = len(configs)
            configs.append(task.config)
            config_ids[key] = config_id
        items.append((config_id, task.spec_name, task.population_size,
                      task.trial, task.family, task.configuration_seed,
                      task.scheduler_seed))
    pool_size = min(workers, len(tasks))
    owned = ProcessPoolExecutor(max_workers=pool_size,
                                mp_context=_pool_context(),
                                initializer=_init_worker,
                                initargs=(dict(enumerate(configs)),))
    try:
        yield from owned.map(_execute_light, items,
                             chunksize=_chunksize(len(items), pool_size))
    except (KeyboardInterrupt, GeneratorExit):
        # Drop every queued trial; the final shutdown below still waits for
        # the in-flight ones so workers die cleanly, then the interrupt
        # continues to the caller (which may write completed batches back).
        owned.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        owned.shutdown(wait=True)


#: Per-result callback: ``on_result(position, task, result, served)`` with
#: ``position`` the task's index in the sequence handed to
#: :func:`run_trials`, and ``served`` True when the result came from the
#: results store rather than an execution.
OnResult = Callable[[int, TrialTask, TrialResult, bool], None]


def run_trials(tasks: Sequence[TrialTask],
               workers: Optional[int] = None,
               store=None,
               on_result: Optional[OnResult] = None,
               pool: "ProcessPoolExecutor | None" = None) -> List[TrialResult]:
    """Execute a flat task list, serially or across worker processes.

    ``workers=None`` (or ``<= 1``) runs in-process; any larger value fans the
    tasks out over one process pool.  Tasks may mix batches freely (that is
    how :func:`run_batches` shares its pool).  Results come back in task
    order either way, and with identical per-trial step counts (see the
    module docstring).

    ``store`` (a :class:`repro.store.ResultsStore`) serves any trial whose
    batch record is already on disk and executes only the rest, writing
    completed batches back; results are bit-identical to a storeless run
    because every trial's seeds are derived per trial index before any
    execution (a stored 20-trial batch extends to 50 by running exactly
    trials 20..49).

    ``on_result`` is invoked once per trial as its result becomes available
    — store-served trials first (they are known before anything executes),
    then executed trials in task order — which is what gives the experiment
    service its live served/executed progress counters.  ``pool`` reuses a
    caller-owned long-lived executor instead of creating one (see
    :func:`_result_stream`); ``workers`` is then ignored.

    A ``KeyboardInterrupt`` mid-run shuts the owned pool down cleanly
    (queued trials cancelled, in-flight trials finished) and — on the store
    path — writes every batch's completed contiguous trial prefix back
    before re-raising, so an interrupted sweep resumes instead of
    recomputing.

    A :class:`BrokenProcessPool` — a worker process OOM-killed or otherwise
    dead — is survived once on an *owned* pool: a fresh pool is built and
    only the not-yet-yielded tail of the task list re-runs (determinism
    makes the re-run bit-identical; with a store it is mostly served from
    cache).  A second break raises a ``RuntimeError`` diagnostic instead of
    retrying forever.  On a caller-owned ``pool`` the exception propagates
    — the pool's owner (the service's :class:`WarmPool`) does the
    rebuilding, since other runs share that pool.
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if store is None:
        return _run_plain_trials(tasks, workers, on_result, pool)
    return _run_stored_trials(tasks, workers, store, on_result, pool)


def _broken_pool_diagnostic(done: int, total: int) -> str:
    return (
        f"process pool broke twice while executing trials "
        f"({done} of {total} completed); a worker process is dying "
        "repeatedly — likely killed by the OS (OOM) or crashing on a "
        "specific trial. Re-run serially (workers=1) to isolate it.")


def _run_plain_trials(tasks: Sequence[TrialTask], workers: Optional[int],
                      on_result: Optional[OnResult],
                      pool: "ProcessPoolExecutor | None",
                      ) -> List[TrialResult]:
    """The storeless path of :func:`run_trials`, with one pool rebuild.

    Results accumulate across pool incarnations: after a break, only tasks
    whose results were never yielded re-run on the fresh pool.
    """
    results: List[TrialResult] = []
    rebuilt = False
    while True:
        stream = _result_stream(tasks[len(results):], workers, pool)
        try:
            for outcome in stream:
                position = len(results)
                results.append(outcome)
                if on_result is not None:
                    on_result(position, tasks[position], outcome, False)
        except KeyboardInterrupt:
            stream.close()  # shuts an owned pool down promptly
            raise
        except BrokenProcessPool as error:
            if pool is not None:
                raise  # shared pool: its owner rebuilds (WarmPool.run_point)
            if rebuilt:
                raise RuntimeError(
                    _broken_pool_diagnostic(len(results), len(tasks))
                ) from error
            rebuilt = True
            continue
        return results


# ---------------------------------------------------------------------- #
# Results-store integration
# ---------------------------------------------------------------------- #
@dataclass
class _StoreGroup:
    """One batch's store bookkeeping while a stored run is in flight."""

    digest: str
    cached: List[TrialResult]
    positions: List[int] = dataclass_field(default_factory=list)
    pending: int = 0


def _run_stored_trials(tasks: Sequence[TrialTask], workers: Optional[int],
                       store, on_result: Optional[OnResult] = None,
                       pool: "ProcessPoolExecutor | None" = None,
                       ) -> List[TrialResult]:
    """The store-aware executor: serve cached trials, run and persist the rest.

    Tasks are grouped into batches by identity (spec, size, family, RNG
    label, config); each batch's record is loaded once and consulted per
    trial index.  Missing trials execute through the same serial/pool core
    as a storeless run, and a batch is written back — cached prefix plus
    fresh results, as one contiguous record — the moment its last missing
    trial completes, so an interrupted sweep resumes point-by-point.

    A ``KeyboardInterrupt`` mid-stream additionally writes back every
    *partially* completed batch's contiguous result prefix before
    re-raising: a Ctrl-C can no longer lose finished trials that a resume
    would have served from the store.
    """
    from repro.store.store import batch_digest

    # Group strictly by digest — the record's address.  Configs differing
    # only in non-identity fields (trials/sizes/engine) have distinct
    # cache_key()s but the SAME digest; were they separate groups, each
    # would hold its own stale `cached` snapshot and the last write-back
    # could shrink a record the other group had just extended.
    digest_by_key: Dict[Tuple, str] = {}
    groups: Dict[str, _StoreGroup] = {}
    ordered_groups: List[_StoreGroup] = []
    group_of: Dict[int, _StoreGroup] = {}
    for position, task in enumerate(tasks):
        label = task.rng_label or task.spec_name
        key = (task.spec_name, task.population_size, task.family, label,
               task.config.cache_key())
        digest = digest_by_key.get(key)
        if digest is None:
            digest = batch_digest(task.spec_name, task.population_size,
                                  task.family, label, task.config)
            digest_by_key[key] = digest
        group = groups.get(digest)
        if group is None:
            group = _StoreGroup(digest=digest,
                                cached=store.load(digest) or [])
            groups[digest] = group
            ordered_groups.append(group)
        group.positions.append(position)
        group_of[position] = group

    results: List[Optional[TrialResult]] = [None] * len(tasks)
    pending: List[int] = []
    for group in ordered_groups:
        for position in group.positions:
            if tasks[position].trial < len(group.cached):
                results[position] = group.cached[tasks[position].trial]
            else:
                pending.append(position)
                group.pending += 1
    store.served += len(tasks) - len(pending)
    store.executed += len(pending)
    if on_result is not None:
        for position, cached in enumerate(results):
            if cached is not None:
                on_result(position, tasks[position], cached, True)

    completed = 0
    rebuilt = False
    while completed < len(pending):
        stream = _result_stream(
            [tasks[position] for position in pending[completed:]],
            workers, pool)
        try:
            for position, outcome in zip(pending[completed:], stream):
                results[position] = outcome
                completed += 1
                if on_result is not None:
                    on_result(position, tasks[position], outcome, False)
                group = group_of[position]
                group.pending -= 1
                if group.pending == 0:
                    _write_back(store, group, tasks, results)
        except KeyboardInterrupt:
            # Shut the pool down (queued trials cancelled, in-flight
            # finished), then persist what every unfinished batch already
            # produced: its contiguous prefix is a valid record a resumed
            # sweep tops up.
            stream.close()
            for group in ordered_groups:
                if group.pending > 0:
                    _write_back(store, group, tasks, results)
            raise
        except BrokenProcessPool as error:
            # Persist every partial batch first — whatever happens next,
            # the finished prefixes are resumable — then rebuild once (the
            # re-run's head is served straight from what was just saved).
            for group in ordered_groups:
                if group.pending > 0:
                    _write_back(store, group, tasks, results)
            if pool is not None:
                raise  # shared pool: its owner rebuilds (WarmPool.run_point)
            if rebuilt:
                raise RuntimeError(
                    _broken_pool_diagnostic(
                        len(tasks) - (len(pending) - completed), len(tasks))
                ) from error
            rebuilt = True
            continue
    return results  # type: ignore[return-value]  # every slot is filled above


def _write_back(store, group: _StoreGroup, tasks: Sequence[TrialTask],
                results: Sequence[Optional[TrialResult]]) -> None:
    """Persist one batch: cached trials merged with whatever has finished.

    Only the contiguous index prefix is stored (the record invariant that
    keeps top-ups sound), and only when the run added trials beyond what
    the record already held.  Called mid-run on an interrupt, some
    positions may still be unfilled — they simply truncate the prefix.
    """
    if not store.write:
        return
    from repro.store.store import canonical_config

    merged: Dict[int, TrialResult] = dict(enumerate(group.cached))
    for position in group.positions:
        if results[position] is not None:
            merged[tasks[position].trial] = results[position]
    trials: List[TrialResult] = []
    while len(trials) in merged:
        trials.append(merged[len(trials)])
    if len(trials) <= len(group.cached):
        return
    task = tasks[group.positions[0]]
    store.save(group.digest, {
        "spec": task.spec_name,
        "population_size": task.population_size,
        "family": task.family,
        "rng_label": task.rng_label or task.spec_name,
        "config": canonical_config(task.config),
    }, trials)


def validate_batch(request: BatchRequest) -> str:
    """Eager checks for one sweep point; returns the resolved family.

    Mirrors :func:`repro.api.registry.run_spec`'s eager validation (the spec
    must be simulated, the engine, size, topology, and family must all
    apply) without deriving any seeds — the experiment service runs exactly
    this at submission time so a bad request is rejected with a 400 before
    it ever reaches the queue.  ``ValueError``/``KeyError`` carry the
    user-facing message.

    Every independent check runs even after one fails, so a misconfigured
    request reports *all* of its problems in one pass.  A single problem
    re-raises its original exception unchanged (an unknown family is still
    a ``KeyError``, a bad engine still a ``ValueError``); multiple
    problems are folded into one ``ValueError`` listing each.
    """
    from repro.api.registry import get_spec
    from repro.topology.registry import validate_topology

    # Without a known simulated spec nothing downstream is checkable, so
    # these two remain genuinely fail-fast.
    spec = get_spec(request.spec_name)
    if not spec.is_simulated:
        raise ValueError(
            f"protocol {request.spec_name!r} is analytic; "
            "use evaluate_analytic() instead"
        )
    config = request.config
    n = request.population_size
    problems: List[Exception] = []

    def attempt(check: Callable[[], object]) -> None:
        try:
            check()
        except (ValueError, KeyError) as error:
            problems.append(error)

    attempt(lambda: spec.resolve_engine(config.engine))
    attempt(lambda: spec.require_supported(n))

    def check_topology() -> None:
        spec.require_topology(config.topology)
        validate_topology(config.topology, n, **config.topology_kwargs())

    attempt(check_topology)
    if config.scenario:
        from repro.scenario.runtime import validate_scenario

        attempt(lambda: validate_scenario(config.scenario, spec, n, config))
    family = request.family or spec.default_family
    attempt(lambda: spec.require_family(family))
    if request.trials is not None and request.trials < 1:
        problems.append(ValueError(
            f"trials must be >= 1, got {request.trials}"))
    if not problems:
        return family
    if len(problems) == 1:
        raise problems[0]
    details = "; ".join(
        str(error.args[0]) if error.args else str(error)
        for error in problems)
    raise ValueError(
        f"invalid request for {request.spec_name!r} (n={n}): "
        f"{len(problems)} problems: {details}")


def batch_tasks(request: BatchRequest) -> List[TrialTask]:
    """Validate one sweep point and derive its trial tasks.

    :func:`validate_batch` carries the fail-fast checks (so a bad point
    aborts the whole sweep before any trial runs); seeds are then derived
    exactly as a standalone run would derive them.
    """
    from repro.api.registry import get_spec

    family = validate_batch(request)
    spec = get_spec(request.spec_name)
    return trial_tasks(
        request.spec_name, request.population_size, request.config, family,
        trials=request.trials,
        rng_label=request.rng_label or spec.rng_label or request.spec_name,
    )


#: Per-point callback of :func:`run_batches`:
#: ``on_point_done(index, request, outcomes)`` with ``index`` the request's
#: position and ``outcomes`` its trial results in trial order.
OnPointDone = Callable[[int, BatchRequest, List[TrialResult]], None]


def run_batches(requests: Sequence[BatchRequest],
                workers: Optional[int] = None,
                store=None,
                on_point_done: Optional[OnPointDone] = None,
                pool: "ProcessPoolExecutor | None" = None,
                ) -> List[List[TrialResult]]:
    """Execute many ``(protocol, n)`` batches on one shared process pool.

    The sweep-level fan-out: every request's trials join one flat task list
    drained by a single pool, so workers stay busy across point boundaries
    instead of idling while a nearly-finished point drains.  Per-batch seed
    derivation is unchanged (each batch's streams depend only on its own
    label and size), so results — returned as one ``List[TrialResult]`` per
    request, in request order — are bit-identical to running each batch
    alone, serially or in parallel.

    ``store`` consults the results store per batch: fully-cached points run
    zero trials, partially-cached points top up only the missing tail, and
    each point is persisted as soon as it completes — which is what lets an
    interrupted sweep resume point-by-point on the next invocation.  A
    ``KeyboardInterrupt`` mid-sweep shuts the pool down cleanly and writes
    every batch's finished prefix back before re-raising.

    ``on_point_done`` fires the moment a point's last trial result is
    available (sweep CLIs print incremental progress with it); with a
    store, fully-cached points fire before any execution starts, so points
    may complete out of request order.  ``pool`` reuses a caller-owned
    long-lived executor (see :func:`run_trials`).

    Validation sweeps *all* points before any seed derivation: a sweep
    with several bad points reports every one of them (with its request
    index) in a single error instead of stopping at the first.
    """
    invalid: List[Tuple[int, Exception]] = []
    for index, request in enumerate(requests):
        try:
            validate_batch(request)
        except (ValueError, KeyError) as error:
            invalid.append((index, error))
    if len(invalid) == 1:
        raise invalid[0][1]  # one bad point: the original error says it all
    if invalid:
        lines = []
        for index, error in invalid:
            request = requests[index]
            message = error.args[0] if error.args else str(error)
            lines.append(f"point {index} ({request.spec_name!r}, "
                         f"n={request.population_size}): {message}")
        summary = "\n  ".join(lines)
        raise ValueError(
            f"invalid sweep: {len(invalid)} of {len(requests)} points "
            f"rejected:\n  {summary}")
    per_batch = [batch_tasks(request) for request in requests]
    flat: List[TrialTask] = []
    point_of: List[int] = []
    for index, tasks in enumerate(per_batch):
        flat.extend(tasks)
        point_of.extend([index] * len(tasks))
    on_result: Optional[OnResult] = None
    if on_point_done is not None:
        offsets: List[int] = []
        cursor = 0
        for tasks in per_batch:
            offsets.append(cursor)
            cursor += len(tasks)
        remaining = [len(tasks) for tasks in per_batch]
        slots: List[List[Optional[TrialResult]]] = [
            [None] * len(tasks) for tasks in per_batch]

        def on_result(position: int, task: TrialTask, result: TrialResult,
                      served: bool) -> None:
            point = point_of[position]
            slots[point][position - offsets[point]] = result
            remaining[point] -= 1
            if remaining[point] == 0:
                on_point_done(point, requests[point], list(slots[point]))

    outcomes = run_trials(flat, workers=workers, store=store,
                          on_result=on_result, pool=pool)
    grouped: List[List[TrialResult]] = []
    cursor = 0
    for tasks in per_batch:
        grouped.append(outcomes[cursor:cursor + len(tasks)])
        cursor += len(tasks)
    return grouped
