"""Parallel trial runner: fan independent trials out over worker processes.

Every experiment in this package is, at bottom, a batch of *independent*
trials — same protocol, same ring size, different random streams.  This
module turns one such batch into a list of :class:`TrialTask` records
(primitive, picklable) and executes them either serially in-process or on a
:class:`concurrent.futures.ProcessPoolExecutor`.

Determinism
-----------
Parallel execution is bit-for-bit identical to serial execution for the same
seed because all randomness is decided *before* the fan-out: the parent
process derives one configuration seed and one scheduler seed per trial from
the master seed (mirroring the spawn chain the serial
:func:`repro.analysis.convergence.measure_convergence` loop has always used)
and ships only those integers to the workers.  A worker reconstructs its
:class:`~repro.core.rng.RandomSource` streams from the integers, so the order
in which workers run — or whether they run in another process at all — cannot
change any trial's outcome.  Only wall-clock timings differ between modes.

Workers re-resolve the protocol spec *by name* from
:mod:`repro.api.registry`, so nothing protocol-specific (factories, stop
predicates, oracle simulations) ever crosses the process boundary.  Specs
registered at import time are therefore visible in every worker; specs
registered dynamically at runtime additionally require the ``fork`` start
method (the default on Linux, and forced below when available).
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.api.config import ExperimentConfig
from repro.core.rng import RandomSource


@dataclass(frozen=True)
class TrialTask:
    """One independent trial, fully described by picklable primitives."""

    spec_name: str
    population_size: int
    trial: int
    family: str
    configuration_seed: int
    scheduler_seed: int
    config: ExperimentConfig


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial: steps to the stop predicate, or a budget miss."""

    trial: int
    steps: int
    converged: bool
    wall_time: float
    #: Which engine actually executed the trial ("step" or "batched") —
    #: observability for the auto engine's enumerate-or-fallback choice.
    #: Both engines produce identical steps/converged for the same seeds.
    engine: str = "step"
    #: Display name of the protocol instance that ran.  The worker builds
    #: the protocol anyway, so reporting the name here lets aggregators
    #: (run_spec, the builder) resolve it without constructing a throwaway
    #: instance of their own before the fan-out.
    protocol_name: str = ""

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def trial_tasks(
    spec_name: str,
    n: int,
    config: ExperimentConfig,
    family: str,
    trials: Optional[int] = None,
    rng_label: Optional[str] = None,
) -> List[TrialTask]:
    """Derive the per-trial seed pairs for one batch, in trial order.

    ``rng_label`` defaults to ``spec_name``; the harness shims override it to
    reproduce the exact random streams of the pre-registry adapters.
    """
    count = config.trials if trials is None else trials
    if count < 1:
        raise ValueError(f"trials must be >= 1, got {count}")
    source = config.rng(f"{rng_label or spec_name}-{n}")
    tasks: List[TrialTask] = []
    for trial in range(count):
        trial_rng = source.spawn(f"trial-{trial}")
        tasks.append(
            TrialTask(
                spec_name=spec_name,
                population_size=n,
                trial=trial,
                family=family,
                configuration_seed=trial_rng.spawn("configuration").seed,
                scheduler_seed=trial_rng.spawn("scheduler").seed,
                config=config,
            )
        )
    return tasks


def execute_trial(task: TrialTask) -> TrialResult:
    """Run one trial to its stop predicate (serial path and worker entry point).

    The engine comes from ``task.config.engine``: ``"auto"`` compiles the
    protocol into the batched table-driven engine when its state space
    enumerates and falls back to the step loop otherwise.  Either way the
    trial's random streams — and therefore its step count and outcome — are
    bit-identical (see :meth:`repro.api.registry.ProtocolSpec.build_simulation`).
    """
    from repro.api.registry import get_spec
    from repro.core.fast_simulator import BatchedSimulation

    spec = get_spec(task.spec_name)
    protocol = spec.build_protocol(task.population_size, task.config)
    population = spec.build_population(task.population_size, task.config)
    initial = spec.build_configuration(
        task.family, protocol, task.population_size,
        RandomSource(task.configuration_seed),
    )
    started = time.perf_counter()
    simulation = spec.build_simulation(
        protocol, population, initial, RandomSource(task.scheduler_seed),
        engine=task.config.engine,
    )
    predicate = spec.build_stop_predicate(protocol, population)
    run = simulation.run_until(
        predicate,
        max_steps=task.config.max_steps,
        check_interval=task.config.check_interval,
    )
    return TrialResult(
        trial=task.trial,
        steps=run.steps,
        converged=run.satisfied,
        wall_time=time.perf_counter() - started,
        engine="batched" if isinstance(simulation, BatchedSimulation) else "step",
        protocol_name=protocol.name,
    )


def _pool_context():
    """Prefer ``fork`` so dynamically registered specs reach the workers.

    Linux only: macOS still offers ``fork`` but CPython switched its default
    to ``spawn`` there because forked children can abort inside system
    frameworks — respect the platform default everywhere else.
    """
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def run_trials(tasks: Sequence[TrialTask],
               workers: Optional[int] = None) -> List[TrialResult]:
    """Execute a batch of trials, serially or across worker processes.

    ``workers=None`` (or ``<= 1``) runs in-process; any larger value fans the
    batch out over a process pool.  Results come back in task order either
    way, and with identical per-trial step counts (see the module docstring).
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers is None or workers <= 1 or len(tasks) <= 1:
        return [execute_trial(task) for task in tasks]
    pool_size = min(workers, len(tasks))
    with ProcessPoolExecutor(max_workers=pool_size,
                             mp_context=_pool_context()) as pool:
        return list(pool.map(execute_trial, tasks))
