"""Fluent experiment builder: one readable chain from protocol to result.

>>> from repro.api import experiment
>>> result = (experiment("ppl")
...           .on_ring(64)
...           .from_adversarial()
...           .until_safe()
...           .trials(8)
...           .seed(7)
...           .run())
>>> result.all_converged
True

Every method returns the builder, every setting has a sensible default, and
``run()`` returns a typed :class:`ExperimentResult` with per-trial step
counts, wall times, and convergence flags.  ``parallel()`` switches the same
chain onto the process-pool executor with bit-identical trial outcomes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api.config import (
    DEFAULT_TOPOLOGY,
    ExperimentConfig,
    freeze_topology_params,
)
from repro.api.executor import TrialResult, run_trials, trial_tasks
from repro.api.registry import ProtocolSpec, get_spec
from repro.scenario.spec import (
    DEGENERATE_PHASE,
    CanonicalScenario,
    normalize_scenario,
    parse_scenario,
    scenario_to_json,
)


@dataclass(frozen=True)
class ExperimentResult:
    """Typed outcome of one built experiment (one protocol, one population)."""

    spec: str
    protocol: str
    population_size: int
    family: str
    seed: int
    max_steps: int
    workers: int
    trials: Tuple[TrialResult, ...]
    wall_time: float
    topology: str = DEFAULT_TOPOLOGY
    topology_params: Tuple[Tuple[str, int], ...] = ()
    scenario: CanonicalScenario = ()

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    @property
    def trial_count(self) -> int:
        return len(self.trials)

    @property
    def steps(self) -> List[int]:
        """Per-trial step counts, in trial order (budget misses included)."""
        return [trial.steps for trial in self.trials]

    @property
    def converged(self) -> List[bool]:
        """Per-trial convergence flags, in trial order."""
        return [trial.converged for trial in self.trials]

    @property
    def all_converged(self) -> bool:
        return all(trial.converged for trial in self.trials)

    @property
    def failures(self) -> int:
        """Trials that missed their step budget (``failures == trial_count``
        for an all-failed run — reported, never raised)."""
        return sum(1 for trial in self.trials if not trial.converged)

    def mean_steps(self) -> float:
        """Mean steps over converged trials (``inf`` when nothing converged)."""
        counts = [trial.steps for trial in self.trials if trial.converged]
        return sum(counts) / len(counts) if counts else float("inf")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (used by ``repro-ssle run --format json``)."""
        return {
            "spec": self.spec,
            "protocol": self.protocol,
            "population_size": self.population_size,
            "topology": self.topology,
            "topology_params": dict(self.topology_params),
            "family": self.family,
            "scenario": scenario_to_json(self.scenario),
            "seed": self.seed,
            "max_steps": self.max_steps,
            "workers": self.workers,
            "wall_time": self.wall_time,
            "all_converged": self.all_converged,
            "failures": self.failures,
            "mean_steps": self.mean_steps() if self.all_converged or any(self.converged) else None,
            "trials": [trial.to_dict() for trial in self.trials],
        }


class ExperimentBuilder:
    """Fluent configuration of one experiment over one registered protocol."""

    def __init__(self, spec_name: str) -> None:
        self._spec: ProtocolSpec = get_spec(spec_name)
        if not self._spec.is_simulated:
            raise ValueError(
                f"protocol {spec_name!r} is analytic and cannot be run as an "
                "experiment; use repro.api.evaluate_analytic() instead"
            )
        self._n: int = 16
        self._family: str = self._spec.default_family
        self._trials: int = ExperimentConfig.trials
        self._seed: int = ExperimentConfig.seed
        self._max_steps: int = ExperimentConfig.max_steps
        self._check_interval: int = ExperimentConfig.check_interval
        self._kappa_factor: int = ExperimentConfig.kappa_factor
        self._workers: int = 1
        self._engine: str = ExperimentConfig.engine
        self._topology: str = DEFAULT_TOPOLOGY
        self._topology_params: Dict[str, int] = {}
        self._store = None
        self._scenario_phases: List[Tuple] = []
        self._pending_perturbation: Optional[Tuple[str, Tuple]] = None

    # ------------------------------------------------------------------ #
    # Fluent setters (each returns the builder)
    # ------------------------------------------------------------------ #
    def on_ring(self, n: int) -> "ExperimentBuilder":
        """Run on a directed ring of ``n`` agents (validated against the spec)."""
        return self.on_topology(DEFAULT_TOPOLOGY, n)

    def on_complete(self, n: int) -> "ExperimentBuilder":
        """Run on the complete graph over ``n`` agents."""
        return self.on_topology("complete", n)

    def on_torus(self, width: int, height: int) -> "ExperimentBuilder":
        """Run on a ``width x height`` torus (``n = width*height`` agents)."""
        return self.on_topology("torus", width * height,
                                width=width, height=height)

    def on_topology(self, name: str, n: int, **params: int) -> "ExperimentBuilder":
        """Run on any registered topology (see :mod:`repro.topology.registry`).

        Validated eagerly: the spec must support the topology and the size,
        and the topology must be constructible for ``(n, params)`` — so a
        bad combination fails in the chain, not mid-run.  Nothing is built
        here; the population is constructed once per trial, in the worker.
        """
        self._spec.require_topology(name)
        self._spec.require_supported(n)
        from repro.topology.registry import validate_topology

        validate_topology(name, n, **params)
        self._topology = name
        self._topology_params = dict(params)
        self._n = n
        return self

    def from_family(self, family: str) -> "ExperimentBuilder":
        """Draw initial configurations from a named family of the spec."""
        self._spec.require_family(family)
        self._family = family
        return self

    def from_adversarial(self) -> "ExperimentBuilder":
        """Uniform adversarial starts (the literature's default adversary)."""
        return self.from_family("adversarial")

    def from_random(self) -> "ExperimentBuilder":
        """Independently random starts (alias of the adversarial family)."""
        return self.from_family("random")

    def until_safe(self) -> "ExperimentBuilder":
        """Stop each trial at the spec's safety/stability predicate (default)."""
        return self

    # ------------------------------------------------------------------ #
    # Phased scenarios (perturb and re-converge)
    # ------------------------------------------------------------------ #
    def scenario(self, value) -> "ExperimentBuilder":
        """Run a whole phased scenario per trial (see :mod:`repro.scenario`).

        ``value`` is a catalog string (``"corrupt-recover:k=2"`` — the CLI's
        ``--scenario`` grammar), a canonical phase tuple, a
        :class:`~repro.scenario.spec.ScenarioSpec`, or a list of phase
        mappings.  Replaces anything a previous ``then_*`` chain staged.
        """
        if isinstance(value, str):
            canonical = parse_scenario(value)
        else:
            canonical = normalize_scenario(value)
        self._scenario_phases = list(canonical)
        self._pending_perturbation = None
        return self

    def _stage_perturbation(self, name: str, params: Tuple) -> "ExperimentBuilder":
        """Stage one perturbation; the next ``then_converge``/``then_run``
        closes it into a phase.  The first staged perturbation implicitly
        prepends today's plain convergence phase (perturb *after* the system
        has stabilized), and staging twice in a row closes the earlier one
        with a default converge phase."""
        if not self._scenario_phases and self._pending_perturbation is None:
            self._scenario_phases.append(DEGENERATE_PHASE)
        if self._pending_perturbation is not None:
            staged_name, staged_params = self._pending_perturbation
            self._scenario_phases.append((staged_name, staged_params, "converge", 0))
        self._pending_perturbation = (name, params)
        return self

    def then_corrupt(self, k: int = 1) -> "ExperimentBuilder":
        """After the previous phase, corrupt ``k`` agent states at random."""
        return self._stage_perturbation("corrupt-states", (("k", k),))

    def then_churn(self, leave: int = 1, join: int = 1) -> "ExperimentBuilder":
        """After the previous phase, ``leave`` agents depart and ``join``
        fresh agents arrive (the topology re-wires at the new size)."""
        return self._stage_perturbation("churn", (("join", join), ("leave", leave)))

    def then_bias(self, weight: int = 4, hot: int = 0) -> "ExperimentBuilder":
        """After the previous phase, bias the scheduler: a hot arc set is
        ``weight`` times likelier per draw (``hot=0`` = a quarter of arcs)."""
        params = (("weight", weight),) if hot == 0 else (("hot", hot), ("weight", weight))
        return self._stage_perturbation("bias", params)

    def then_converge(self, max_steps: int = 0) -> "ExperimentBuilder":
        """Close the staged perturbation (if any) with a re-convergence
        phase; ``max_steps=0`` inherits the chain's per-trial budget."""
        if max_steps < 0:
            raise ValueError(f"max_steps must be non-negative, got {max_steps}")
        name, params = self._pending_perturbation or ("", ())
        self._pending_perturbation = None
        self._scenario_phases.append((name, params, "converge", max_steps))
        return self

    def then_run(self, steps: int) -> "ExperimentBuilder":
        """Close the staged perturbation (if any) with a fixed-length phase:
        exactly ``steps`` steps, no stop predicate."""
        if steps < 1:
            raise ValueError(f"then_run steps must be >= 1, got {steps}")
        name, params = self._pending_perturbation or ("", ())
        self._pending_perturbation = None
        self._scenario_phases.append((name, params, "run", steps))
        return self

    def _scenario_value(self) -> CanonicalScenario:
        """The chain's canonical scenario (a dangling ``then_corrupt(...)``
        etc. is closed with a default re-convergence phase)."""
        phases = list(self._scenario_phases)
        if self._pending_perturbation is not None:
            name, params = self._pending_perturbation
            phases.append((name, params, "converge", 0))
        return normalize_scenario(tuple(phases))

    def trials(self, count: int) -> "ExperimentBuilder":
        """Number of independent trials."""
        if count < 1:
            raise ValueError(f"trials must be >= 1, got {count}")
        self._trials = count
        return self

    def seed(self, value: int) -> "ExperimentBuilder":
        """Master seed; every trial derives its own streams from it."""
        self._seed = value
        return self

    def max_steps(self, budget: int) -> "ExperimentBuilder":
        """Step budget per trial."""
        if budget < 0:
            raise ValueError(f"max_steps must be non-negative, got {budget}")
        self._max_steps = budget
        return self

    def check_interval(self, steps: int) -> "ExperimentBuilder":
        """How often the stop predicate is evaluated."""
        if steps < 1:
            raise ValueError(f"check_interval must be >= 1, got {steps}")
        self._check_interval = steps
        return self

    def kappa_factor(self, factor: int) -> "ExperimentBuilder":
        """The paper's constant c1 (P_PL only; ignored by the baselines)."""
        if factor < 1:
            raise ValueError(f"kappa_factor must be >= 1, got {factor}")
        self._kappa_factor = factor
        return self

    def engine(self, mode: str) -> "ExperimentBuilder":
        """Pick the simulation engine: ``"auto"`` (default), ``"step"``,
        ``"batched"``, or ``"numpy"``.

        ``"auto"`` picks the fastest applicable tier — the vectorized numpy
        engine when numpy is installed and the protocol's state space
        enumerates, the batched table engine when it enumerates without
        numpy, the step loop otherwise; trial outcomes are bit-identical on
        every tier.  Validated against the spec immediately, so e.g. forcing
        a table tier onto the oracle-backed ``fischer-jiang`` (or ``numpy``
        without numpy installed) fails here rather than mid-run.
        """
        self._spec.resolve_engine(mode)
        self._engine = mode
        return self

    def parallel(self, workers: Optional[int] = None) -> "ExperimentBuilder":
        """Fan trials out over ``workers`` processes (``None`` = os.cpu_count)."""
        import os

        self._workers = workers if workers is not None else (os.cpu_count() or 1)
        if self._workers < 1:
            raise ValueError(f"workers must be >= 1, got {self._workers}")
        return self

    def serial(self) -> "ExperimentBuilder":
        """Run trials in-process (the default)."""
        self._workers = 1
        return self

    def store(self, target, write: bool = True) -> "ExperimentBuilder":
        """Serve and persist trials through a content-addressed results store.

        ``target`` is a store root path or an existing
        :class:`repro.store.ResultsStore` (``write`` is ignored for the
        latter — the store object carries its own writability); ``None``
        turns the store off (the default).  Cached trials are bit-identical
        to freshly executed ones, and a run with more trials than the
        stored record tops up only the missing tail.
        """
        from repro.store import ResultsStore

        if target is None or isinstance(target, ResultsStore):
            self._store = target
        else:
            self._store = ResultsStore(target, write=write)
        return self

    def no_store_write(self) -> "ExperimentBuilder":
        """Make this chain's store use read-only (serve hits, persist nothing).

        Scoped to the builder: a caller-provided store object is replaced
        by a read-only view of the same root, never mutated — other runs
        sharing that object keep their writability (and their counters).
        """
        if self._store is None:
            raise ValueError("no_store_write() requires a store; call .store() first")
        if self._store.write:
            from repro.store import ResultsStore

            self._store = ResultsStore(self._store.root, write=False)
        return self

    # ------------------------------------------------------------------ #
    # Introspection and execution
    # ------------------------------------------------------------------ #
    def build_config(self) -> ExperimentConfig:
        """The :class:`ExperimentConfig` this chain will run with."""
        return ExperimentConfig(
            sizes=(self._n,),
            trials=self._trials,
            max_steps=self._max_steps,
            check_interval=self._check_interval,
            kappa_factor=self._kappa_factor,
            seed=self._seed,
            engine=self._engine,
            topology=self._topology,
            topology_params=freeze_topology_params(self._topology_params),
            scenario=self._scenario_value(),
        )

    def describe(self) -> Dict[str, object]:
        """The chain's settings as a plain dict (no execution)."""
        return {
            "spec": self._spec.name,
            "population_size": self._n,
            "topology": self._topology,
            "topology_params": dict(self._topology_params),
            "family": self._family,
            "scenario": scenario_to_json(self._scenario_value()),
            "trials": self._trials,
            "seed": self._seed,
            "max_steps": self._max_steps,
            "check_interval": self._check_interval,
            "kappa_factor": self._kappa_factor,
            "workers": self._workers,
            "engine": self._engine,
            "store": None if self._store is None else str(self._store.root),
        }

    def run(self) -> ExperimentResult:
        """Execute the configured trials and return the typed result."""
        config = self.build_config()
        if config.scenario:
            # Fail in the chain, not mid-run: every phase's perturbation,
            # parameters, and churn-resized population must be feasible.
            from repro.scenario.runtime import validate_scenario

            validate_scenario(config.scenario, self._spec, self._n, config)
        tasks = trial_tasks(
            self._spec.name, self._n, config, self._family,
            rng_label=self._spec.rng_label or self._spec.name,
        )
        started = time.perf_counter()
        outcomes = run_trials(tasks, workers=self._workers, store=self._store)
        wall_time = time.perf_counter() - started
        return ExperimentResult(
            spec=self._spec.name,
            # The workers report the protocol's display name with each
            # outcome, so no throwaway instance is built here just for it.
            protocol=outcomes[0].protocol_name or self._spec.name,
            population_size=self._n,
            family=self._family,
            seed=self._seed,
            max_steps=self._max_steps,
            workers=self._workers,
            trials=tuple(outcomes),
            wall_time=wall_time,
            topology=self._topology,
            topology_params=freeze_topology_params(self._topology_params),
            scenario=config.scenario,
        )


def experiment(spec_name: str) -> ExperimentBuilder:
    """Entry point of the fluent API: ``experiment("ppl").on_ring(64)...``."""
    return ExperimentBuilder(spec_name)
