"""The :class:`ProtocolSpec` registry: every runnable protocol, declaratively.

Before this module existed, each protocol had a hand-written ``run_*``
adapter in ``experiments/harness.py`` wiring together the same five
ingredients: a protocol factory, a population, an initial-configuration
family, a stop predicate, and (for the oracle baseline) a custom simulation.
A :class:`ProtocolSpec` names those ingredients once; :func:`run_spec` then
runs *any* registered protocol with one generic code path, and the CLI's
``run``/``list`` commands, the fluent :mod:`repro.api.builder`, and the
parallel :mod:`repro.api.executor` all drive the same registry.

Two kinds of spec exist:

* **simulated** — has a ``factory`` and a ``stop_predicate`` and is executed
  by the trial runner (``ppl``, ``yokota2021``, ``fischer-jiang``,
  ``angluin-modk``);
* **analytic** — has an ``analytic_model`` instead (``chen-chen``, whose
  super-exponential convergence cannot be simulated, and ``thue-morse``, the
  certified string substrate underneath it).  ``repro-ssle run`` evaluates
  the model so every listed spec is runnable.

Registering a new protocol is one :func:`register` call; nothing in the
harness, CLI, or builder needs editing.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.convergence import (
    ConvergenceResult,
    default_simulation_factory,
)
from repro.api.config import ExperimentConfig
from repro.api.executor import BatchRequest, TrialResult, batch_tasks, run_trials
from repro.core.configuration import Configuration, random_configuration
from repro.core.encoding import StateEncoder
from repro.core.errors import StateSpaceError
from repro.core.fast_simulator import (
    ENGINES,
    BatchedSimulation,
    NumpySimulation,
    batched_simulation_factory,
    numpy_available,
    numpy_simulation_factory,
)
from repro.core.protocol import Protocol
from repro.core.rng import RandomSource
from repro.core.simulator import Simulation
from repro.topology.graph import Population
from repro.topology.registry import (
    DEFAULT_TOPOLOGY,
    build_topology,
    get_topology_spec,
)
from repro.topology.ring import DirectedRing

#: Builds a protocol instance for one population size under one config.
ProtocolFactory = Callable[[int, ExperimentConfig], Protocol]
#: Builds an initial configuration: (protocol, n, rng) -> Configuration.
ConfigurationFamily = Callable[[Protocol, int, RandomSource], Configuration]
#: Builds the per-protocol stop predicate.  Factories take the protocol
#: instance and may additionally accept the population (second positional
#: parameter) when convergence is topology-dependent; see
#: :meth:`ProtocolSpec.build_stop_predicate`.
PredicateFactory = Callable[..., Callable[[Sequence], bool]]
#: Builds a simulation (hook for oracle-augmented executions).
SimulationFactory = Callable[
    [Protocol, Population, Configuration, RandomSource], Simulation
]
#: Evaluates an analytic (non-simulable) model at one population size.
AnalyticModel = Callable[[int, ExperimentConfig], Dict[str, object]]


def _any_ring(n: int) -> bool:
    return n >= 2


@dataclass(frozen=True)
class CheckPolicy:
    """How :mod:`repro.check.model` may verify one spec's claims.

    The model checker proves closure / stabilization reachability /
    livelock freedom on the explicit configuration graph; this policy is
    where a spec scopes those claims to what it actually asserts.  Lives
    here (not in :mod:`repro.check`) so specs can declare a policy without
    the registry importing the checker.
    """

    #: Non-None opts the spec out of model checking entirely, with the
    #: reported reason (e.g. a state space no enumeration cap can hold,
    #: or convergence semantics outside the pairwise relation).
    skip_reason: Optional[str] = None
    #: Topologies on which the stop predicate is claimed to be *absorbing*
    #: (closure).  ``None`` claims closure everywhere; protocols whose
    #: off-ring predicate detects an event rather than an invariant list
    #: only the topologies where the invariant form applies — closure is
    #: still measured elsewhere, but reported ``not_claimed`` instead of
    #: ``violated``.
    closure_topologies: Optional[Tuple[str, ...]] = None
    #: Enumeration cap for the checker's encoder build (per-spec override
    #: for protocols whose reachable space is larger than the engine
    #: default but still checkable).
    max_states: int = 512
    #: Executor trials the quantitative cross-validation gate runs when
    #: comparing the simulated mean against the exact expected hitting
    #: time (``repro-ssle check --quant``).  The gate is deterministic for
    #: a fixed config seed, so this trades gate runtime against the width
    #: of the standard-error band, not against flakiness.
    quant_trials: int = 200
    #: z-score tolerance of that gate: how many standard errors the
    #: simulated mean may sit from the exact value before the point is
    #: reported ``violated``.
    quant_z: float = 4.0


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything the generic runner needs to know about one protocol."""

    name: str
    summary: str
    factory: Optional[ProtocolFactory] = None
    families: Mapping[str, ConfigurationFamily] = field(default_factory=dict)
    default_family: str = "adversarial"
    stop_predicate: Optional[PredicateFactory] = None
    simulation_factory: SimulationFactory = default_simulation_factory
    #: Topology names (see :mod:`repro.topology.registry`) this protocol is
    #: defined on; ``None`` means any registered topology.  Protocols whose
    #: correctness argument needs the ring (``ppl``, ``yokota2021``) pin
    #: themselves to ``("directed-ring",)`` so a mismatched topology fails
    #: fast instead of silently running a meaningless experiment.
    supported_topologies: Optional[Tuple[str, ...]] = None
    supports: Callable[[int], bool] = _any_ring
    supported_note: str = "any ring size n >= 2"
    #: Prefix of the master RNG label (defaults to ``name``); the harness
    #: shims override it per call to reproduce the pre-registry streams.
    rng_label: Optional[str] = None
    analytic_model: Optional[AnalyticModel] = None
    reference: str = ""
    #: Engine policy for this protocol: ``"auto"`` (fastest applicable tier —
    #: numpy, then batched, then the step loop — by encodability and numpy
    #: availability), ``"step"`` (the protocol needs the step engine — e.g.
    #: an oracle-augmented simulation that inspects the global configuration
    #: every step), or ``"batched"``/``"numpy"`` (that tier must apply;
    #: failure is an error rather than a silent fallback).
    simulation_mode: str = "auto"
    #: Model-checking policy (see :class:`CheckPolicy`); ``None`` means
    #: the checker's defaults — every claim checked on every supported
    #: topology.
    check: Optional[CheckPolicy] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ProtocolSpec.name must be non-empty")
        if self.simulation_mode not in ENGINES:
            raise ValueError(
                f"spec {self.name!r}: simulation_mode must be one of {ENGINES}, "
                f"got {self.simulation_mode!r}"
            )
        if self.analytic_model is None:
            if self.factory is None or self.stop_predicate is None:
                raise ValueError(
                    f"spec {self.name!r} needs a factory and a stop_predicate "
                    "(or an analytic_model)"
                )
            if not self.families:
                raise ValueError(f"spec {self.name!r} declares no configuration families")
            if self.default_family not in self.families:
                raise ValueError(
                    f"spec {self.name!r}: default family {self.default_family!r} "
                    f"not in {sorted(self.families)}"
                )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_simulated(self) -> bool:
        """True for executable specs; False for analytic models."""
        return self.analytic_model is None

    @property
    def kind(self) -> str:
        return "simulated" if self.is_simulated else "analytic"

    def family_names(self) -> List[str]:
        return sorted(self.families)

    def require_supported(self, n: int) -> None:
        if not self.supports(n):
            raise ValueError(
                f"protocol {self.name!r} does not support n={n} "
                f"(requires: {self.supported_note})"
            )

    def require_family(self, family: str) -> None:
        if family not in self.families:
            raise KeyError(
                f"protocol {self.name!r} has no configuration family {family!r}; "
                f"known families: {self.family_names()}"
            )

    def require_topology(self, topology: str) -> None:
        """Reject topologies this protocol is not defined on (fail fast)."""
        get_topology_spec(topology)  # unknown names error with the known list
        if (self.supported_topologies is not None
                and topology not in self.supported_topologies):
            raise ValueError(
                f"protocol {self.name!r} does not support topology "
                f"{topology!r} (supported: "
                f"{', '.join(self.supported_topologies)})"
            )

    # ------------------------------------------------------------------ #
    # Trial ingredients (called by the executor, possibly in a worker)
    # ------------------------------------------------------------------ #
    def build_protocol(self, n: int, config: ExperimentConfig) -> Protocol:
        if self.factory is None:
            raise ValueError(f"protocol {self.name!r} is analytic and cannot be simulated")
        self.require_supported(n)
        return self.factory(n, config)

    def build_population(self, n: int,
                         config: Optional[ExperimentConfig] = None) -> Population:
        """Build the population graph ``config`` selects (default: the ring).

        Called per trial, in every worker: the population is a pure function
        of ``(config.topology, config.topology_params, n)``, which is what
        keeps parallel execution bit-identical to serial execution on every
        topology (seeded random-regular constructions included).
        """
        topology = config.topology if config is not None else DEFAULT_TOPOLOGY
        params = config.topology_kwargs() if config is not None else {}
        self.require_topology(topology)
        return build_topology(topology, n, **params)

    def build_configuration(self, family: str, protocol: Protocol, n: int,
                            rng: RandomSource,
                            population: Optional[Population] = None,
                            ) -> Configuration:
        """Draw the initial configuration from the named family.

        Families historically received ``(protocol, n, rng)``; families whose
        worst case is topology-dependent (e.g. ``packed-row``, which packs
        leaders into one torus row) declare a fourth positional parameter and
        receive the population too.  Dispatch is by declared arity — the same
        rule as :meth:`build_stop_predicate` — so an error raised *inside* a
        family is never misread as a signature mismatch.
        """
        self.require_family(family)
        builder = self.families[family]
        try:
            parameters = [
                parameter
                for parameter in inspect.signature(builder).parameters.values()
                if parameter.kind in (parameter.POSITIONAL_ONLY,
                                      parameter.POSITIONAL_OR_KEYWORD,
                                      parameter.VAR_POSITIONAL)
            ]
            wants_population = (
                len(parameters) >= 4
                or any(parameter.kind is parameter.VAR_POSITIONAL
                       for parameter in parameters)
            )
        except (TypeError, ValueError):  # builtins/partials without signatures
            wants_population = False
        if wants_population:
            if population is None:
                raise ValueError(
                    f"family {family!r} of protocol {self.name!r} needs the "
                    "population; pass population= to build_configuration"
                )
            return builder(protocol, n, rng, population)
        return builder(protocol, n, rng)

    def build_stop_predicate(self, protocol: Protocol,
                             population: Population) -> Callable[[Sequence], bool]:
        """Build the per-trial stop predicate.

        A spec's ``stop_predicate`` factory historically received only the
        protocol instance; factories whose convergence criterion depends on
        the population graph (e.g. ``angluin-modk``, whose label-stability
        notion is ring-specific) declare a second positional parameter and
        receive the population too.  Dispatch is by declared arity, not by
        catching ``TypeError``, so an error raised *inside* a factory is
        never misread as a signature mismatch.
        """
        if self.stop_predicate is None:
            raise ValueError(
                f"protocol {self.name!r} is analytic and has no stop predicate"
            )
        try:
            parameters = [
                parameter
                for parameter in inspect.signature(
                    self.stop_predicate).parameters.values()
                if parameter.kind in (parameter.POSITIONAL_ONLY,
                                      parameter.POSITIONAL_OR_KEYWORD,
                                      parameter.VAR_POSITIONAL)
            ]
            wants_population = (
                len(parameters) >= 2
                or any(parameter.kind is parameter.VAR_POSITIONAL
                       for parameter in parameters)
            )
        except (TypeError, ValueError):  # builtins/partials without signatures
            wants_population = False
        if wants_population:
            return self.stop_predicate(protocol, population)
        return self.stop_predicate(protocol)

    @property
    def requires_step_engine(self) -> bool:
        """True when this spec cannot run on the batched engine at all.

        Either the spec says so explicitly (``simulation_mode="step"``) or it
        installs a custom simulation factory (e.g. the oracle-augmented
        Fischer-Jiang simulation) whose per-step behaviour a transition table
        cannot reproduce.
        """
        return (self.simulation_mode == "step"
                or self.simulation_factory is not default_simulation_factory)

    def resolve_engine(self, engine: str = "auto") -> str:
        """Combine a requested engine with this spec's policy.

        An explicit ``"step"`` request always wins; ``"auto"`` defers to the
        spec's ``simulation_mode``; ``"batched"``/``"numpy"`` are rejected
        for specs that require the step engine (running them through a table
        would silently change their semantics, not just their speed), and
        ``"numpy"`` additionally requires the optional numpy dependency —
        both fail fast here, before any trial runs.
        """
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        mode = self.simulation_mode if engine == "auto" else engine
        if mode == "numpy" and not numpy_available():
            raise ValueError(
                "--engine numpy requires the optional numpy dependency; "
                "install numpy or use --engine auto (which falls back to the "
                "batched tier)"
            )
        if self.requires_step_engine:
            if mode in ("batched", "numpy"):
                raise ValueError(
                    f"protocol {self.name!r} requires the step engine "
                    f"(custom simulation semantics); --engine {mode} does not apply"
                )
            return "step"
        return mode

    def build_simulation(self, protocol: Protocol, population: Population,
                         initial: Configuration, rng: RandomSource,
                         engine: str = "auto",
                         encoder: "StateEncoder | None" = None,
                         scheduler=None,
                         ) -> "Simulation | BatchedSimulation | NumpySimulation":
        """Build the simulation for one trial on the resolved engine.

        ``auto`` prefers the fastest applicable tier: the vectorized numpy
        engine when numpy is installed and the protocol encodes, the batched
        table engine when it encodes without numpy, the step loop otherwise.
        ``encoder`` may carry a batch-shared compiled encoder (see
        :func:`repro.api.executor.shared_encoder`); it is used only when it
        covers this trial's initial configuration, with a per-trial build as
        the fallback, so sharing never changes results.

        Any encoder is built *before* a draw is taken from ``rng``, and all
        engine factories consume exactly one ``rng.randint`` in the same
        position, so the random streams — and therefore every trial result —
        are bit-identical whichever engine ends up running.

        ``scheduler`` (an explicit :class:`~repro.core.scheduler.Scheduler`,
        e.g. the scenario runtime's biased-arc scheduler) replaces the
        engines' internal uniformly random drawing.  In scheduler mode *no*
        engine consumes a draw from ``rng`` — consistently across tiers, so
        cross-engine identity holds here too — and specs with custom
        simulation factories are rejected: an oracle simulation constructs
        its own scheduler, so the request could not be honored.
        """
        mode = self.resolve_engine(engine)
        if scheduler is not None and (
                self.simulation_factory is not default_simulation_factory):
            raise ValueError(
                f"protocol {self.name!r} runs a custom simulation that owns "
                "its scheduler; an explicit scheduler does not apply"
            )
        if mode == "step":
            if scheduler is not None:
                return Simulation(protocol, population, initial,
                                  scheduler=scheduler)
            return self.simulation_factory(protocol, population, initial, rng)
        if encoder is not None and not encoder.covers(initial.states()):
            encoder = None  # shared table misses a state: recompile per trial
        if mode == "auto":
            if encoder is None:
                encoder = StateEncoder.try_build(protocol, initial.states())
            if encoder is None:
                if scheduler is not None:
                    return Simulation(protocol, population, initial,
                                      scheduler=scheduler)
                return self.simulation_factory(protocol, population, initial, rng)
            mode = "numpy" if numpy_available() else "batched"
        elif encoder is None:
            encoder = StateEncoder.build(protocol, initial.states())
        if mode == "numpy":
            if scheduler is not None:
                return NumpySimulation(protocol, population, initial,
                                       scheduler=scheduler, encoder=encoder)
            return numpy_simulation_factory(protocol, population, initial, rng,
                                            encoder=encoder)
        if scheduler is not None:
            return BatchedSimulation(protocol, population, initial,
                                     scheduler=scheduler, encoder=encoder)
        return batched_simulation_factory(protocol, population, initial, rng,
                                          encoder=encoder)


# ---------------------------------------------------------------------- #
# The registry
# ---------------------------------------------------------------------- #
_REGISTRY: Dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec, replace: bool = False) -> ProtocolSpec:
    """Add a spec to the registry; ``replace=False`` rejects duplicates."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"protocol {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a spec (test hygiene; unknown names are ignored)."""
    _REGISTRY.pop(name, None)


def get_spec(name: str) -> ProtocolSpec:
    """Look up a spec by name, with the known names in the error message."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; registered: {spec_names()}"
        ) from None


def spec_names() -> List[str]:
    """Registered spec names, sorted."""
    return sorted(_REGISTRY)


def list_specs() -> List[ProtocolSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in spec_names()]


# ---------------------------------------------------------------------- #
# The generic runner (replaces the per-protocol run_* adapters)
# ---------------------------------------------------------------------- #
def run_spec(
    name: str,
    n: int,
    config: Optional[ExperimentConfig] = None,
    family: Optional[str] = None,
    trials: Optional[int] = None,
    workers: Optional[int] = None,
    rng_label: Optional[str] = None,
    engine: Optional[str] = None,
    store=None,
) -> ConvergenceResult:
    """Run any registered simulated protocol: the one generic adapter.

    Equivalent to the old hand-written ``run_<protocol>`` functions, for every
    protocol at once: build the protocol for ``n``, draw each trial's initial
    configuration from ``family`` (the spec's default when omitted), and run
    until the spec's stop predicate holds.  ``workers`` > 1 fans the trials
    out over processes with identical results (see :mod:`repro.api.executor`).
    ``engine`` overrides ``config.engine`` (default ``"auto"``: the batched
    table-driven engine whenever the protocol encodes, the step loop
    otherwise — trial outcomes are bit-identical either way).  ``store`` (a
    :class:`repro.store.ResultsStore`) serves cached trials from disk and
    persists fresh ones, again with bit-identical results.
    """
    spec = get_spec(name)
    config = config or ExperimentConfig()
    if engine is not None:
        config = replace(config, engine=engine)
    # batch_tasks carries the shared fail-fast validation (simulated-ness,
    # engine, size, topology, family) and the seed derivation — the same
    # code path sweeps take through run_batches, so a check added there can
    # never silently skip standalone runs, or vice versa.
    tasks = batch_tasks(BatchRequest(
        spec_name=name, population_size=n, config=config, family=family,
        trials=trials, rng_label=rng_label,
    ))
    outcomes = run_trials(tasks, workers=workers, store=store)
    # The display name rides along with every trial outcome (the workers
    # build the protocol anyway), so no throwaway instance is constructed
    # here just to read `.name`.
    return collect_convergence(outcomes[0].protocol_name or spec.name, n, outcomes)


def collect_convergence(protocol_name: str, n: int,
                        outcomes: Sequence[TrialResult]) -> ConvergenceResult:
    """Fold per-trial outcomes into the legacy :class:`ConvergenceResult` shape."""
    result: ConvergenceResult = ConvergenceResult(
        protocol_name=protocol_name,
        population_size=n,
        trials=len(outcomes),
    )
    for outcome in outcomes:
        if outcome.converged:
            result.steps.append(outcome.steps)
        else:
            result.failures += 1
    return result


def runner_for(name: str, family: Optional[str] = None,
               rng_label: Optional[str] = None):
    """A ``(n, config) -> ConvergenceResult`` adapter for sweep-style callers."""

    def runner(n: int, config: ExperimentConfig) -> ConvergenceResult:
        return run_spec(name, n, config, family=family, rng_label=rng_label)

    return runner


def evaluate_analytic(name: str, n: int,
                      config: Optional[ExperimentConfig] = None) -> Dict[str, object]:
    """Evaluate an analytic spec's model at ``n`` (errors on simulated specs)."""
    spec = get_spec(name)
    if spec.is_simulated:
        raise ValueError(f"protocol {name!r} is simulated; use run_spec() instead")
    spec.require_supported(n)
    return dict(spec.analytic_model(n, config or ExperimentConfig()))


# ---------------------------------------------------------------------- #
# Built-in specs
# ---------------------------------------------------------------------- #
def _ppl_factory(n: int, config: ExperimentConfig):
    from repro.protocols.ppl import PPLProtocol

    return PPLProtocol.for_population(n, kappa_factor=config.kappa_factor)


def _ppl_safe_predicate(protocol):
    from repro.protocols.ppl import is_safe

    params = protocol.params
    return lambda states: is_safe(states, params)


def _ppl_families() -> Dict[str, ConfigurationFamily]:
    from repro.adversary.initial_configs import ADVERSARIES

    def wrap(adversary):
        return lambda protocol, n, rng: adversary(n, protocol.params, rng)

    families = {name.replace("_", "-"): wrap(fn) for name, fn in ADVERSARIES.items()}
    # The default adversary of the literature under the builder's names:
    families["adversarial"] = families["uniform"]
    families["random"] = families["uniform"]
    return families


def _random_family(protocol: Protocol, n: int, rng: RandomSource) -> Configuration:
    return random_configuration(protocol, n, rng)


def _packed_row_family(protocol: Protocol, n: int, rng: RandomSource,
                       population: Population) -> Configuration:
    """Topology-aware worst case: all leaders packed into one torus row
    (a contiguous leader run on non-grid populations)."""
    from repro.adversary.initial_configs import packed_leader_row

    return packed_leader_row(protocol, n, rng, population)


def _stable_predicate(protocol):
    return protocol.is_stable


def _angluin_predicate(protocol, population):
    """Ring runs keep the strict label-stability criterion; any other
    topology measures the first sole undisputed leader instead (the label
    half of `is_stable` walks agents in ring order and is unsatisfiable on
    graphs with leader-free cycles of length not divisible by k — see
    AngluinModKProtocol.has_undisputed_leader)."""
    if isinstance(population, DirectedRing):
        return protocol.is_stable
    return protocol.has_undisputed_leader


def _yokota_factory(n: int, config: ExperimentConfig):
    from repro.protocols.baselines.yokota2021 import Yokota2021Protocol

    return Yokota2021Protocol.for_population(n)


def _fischer_jiang_factory(n: int, config: ExperimentConfig):
    from repro.protocols.baselines.fischer_jiang import FischerJiangProtocol

    return FischerJiangProtocol()


def _oracle_simulation(protocol, population, initial, rng):
    from repro.protocols.baselines.fischer_jiang import OracleOmega, OracleSimulation

    return OracleSimulation(
        protocol, population, initial,
        oracle=OracleOmega(report_interval=population.size),
        rng=rng.randint(0, 2 ** 31 - 1),
    )


def _angluin_spec(k: int, name: str) -> ProtocolSpec:
    from repro.protocols.baselines.angluin_modk import AngluinModKProtocol

    return ProtocolSpec(
        name=name,
        summary=f"[5] Angluin et al.: constant-state SS-LE when k={k} does not divide n",
        factory=lambda n, config: AngluinModKProtocol(k),
        families={"adversarial": _random_family, "random": _random_family,
                  "packed-row": _packed_row_family},
        stop_predicate=_angluin_predicate,
        supports=lambda n: n >= 2 and n % k != 0,
        supported_note=f"population sizes n >= 2 with n not divisible by k={k}",
        rng_label="angluin",
        reference="[5] Angluin, Aspnes, Fischer, Jiang",
        # Off the directed ring the stop predicate is has_undisputed_leader
        # — an *event* ("a sole leader exists right now"), not an invariant
        # — so closure is claimed, and model-checked, only where is_stable
        # applies.  Reachability and livelock freedom are claimed everywhere.
        check=CheckPolicy(closure_topologies=("directed-ring",)),
    )


def ensure_angluin_spec(k: int) -> ProtocolSpec:
    """The mod-``k`` spec, registering a variant on demand for ``k != 2``."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    name = "angluin-modk" if k == 2 else f"angluin-mod{k}"
    if name in _REGISTRY:
        return _REGISTRY[name]
    return register(_angluin_spec(k, name))


def _chen_chen_model(n: int, config: ExperimentConfig) -> Dict[str, object]:
    from repro.protocols.baselines.chen_chen import ChenChenModel, safe_embedding
    from repro.protocols.baselines.thue_morse import is_cube_free

    model = ChenChenModel()
    return {
        "protocol": model.name,
        "analytic": True,
        "states": model.state_space_size(),
        "expected_steps_model": model.expected_steps(n),
        "safe_embedding_cube_free": is_cube_free(safe_embedding(n)),
        "note": "super-exponential convergence; model only, not a measurement",
    }


def _thue_morse_model(n: int, config: ExperimentConfig) -> Dict[str, object]:
    from repro.protocols.baselines.chen_chen import leaderless_embedding_has_cube
    from repro.protocols.baselines.thue_morse import is_cube_free, thue_morse_prefix

    prefix = thue_morse_prefix(n)
    return {
        "protocol": "ThueMorse(substrate)",
        "analytic": True,
        "prefix": prefix,
        "prefix_cube_free": is_cube_free(prefix),
        "leaderless_ring_has_cube": leaderless_embedding_has_cube(prefix),
        "note": "string substrate of the Chen-Chen baseline; certified checks",
    }


def _register_builtin_specs() -> None:
    register(ProtocolSpec(
        name="ppl",
        summary="this work: P_PL, polylog(n)-state SS-LE in O(n^2 log n) steps",
        factory=_ppl_factory,
        families=_ppl_families(),
        stop_predicate=_ppl_safe_predicate,
        # P_PL's segments/tokens are defined by the ring orientation; running
        # it elsewhere would be a category error, so mismatches fail fast.
        supported_topologies=("directed-ring",),
        rng_label="ppl",
        reference="PODC 2023 (the reproduced paper)",
        # P_PL's per-agent space is polylog(n) *asymptotically* but holds
        # segment IDs and counters whose product is in the millions even at
        # psi=2 — no enumeration cap can hold it, so its self-stabilization
        # coverage stays dynamic (the adversarial sweep experiments).
        check=CheckPolicy(skip_reason=(
            "P_PL's state space (segment IDs x counters, millions of states "
            "even at psi=2) exceeds any enumeration cap; stabilization "
            "coverage is dynamic, via the adversarial sweeps")),
    ))
    register(ProtocolSpec(
        name="yokota2021",
        summary="[28] Yokota et al.: O(n)-state SS-LE baseline in Theta(n^2) steps",
        factory=_yokota_factory,
        families={"adversarial": _random_family, "random": _random_family},
        stop_predicate=_stable_predicate,
        supported_topologies=("directed-ring",),
        rng_label="yokota",
        reference="[28] Yokota, Sudo, Masuzawa",
    ))
    register(ProtocolSpec(
        name="fischer-jiang",
        summary="[15] Fischer-Jiang: constant-state SS-LE with the eventual leader-detector oracle",
        factory=_fischer_jiang_factory,
        families={"adversarial": _random_family, "random": _random_family,
                  "packed-row": _packed_row_family},
        stop_predicate=_stable_predicate,
        simulation_factory=_oracle_simulation,
        # The oracle inspects the global configuration every step — semantics
        # a pairwise transition table cannot express, so the batched engine
        # never applies (the raw protocol still encodes; see the benchmark).
        simulation_mode="step",
        # The oracle/bullet machinery is topology-agnostic (the original
        # paper states the oracle result for general graphs), so every
        # registered topology is accepted.
        rng_label="fj",
        reference="[15] Fischer, Jiang",
        # Convergence is driven by the oracle's global eventually-correct
        # reports, which live in OracleSimulation, not in the pairwise
        # transition relation — the configuration graph of the raw tables
        # would verify a different protocol than the one that runs.
        check=CheckPolicy(skip_reason=(
            "convergence depends on the eventual leader-detector oracle "
            "inside OracleSimulation, which is outside the pairwise "
            "transition relation the checker enumerates")),
    ))
    register(_angluin_spec(2, "angluin-modk"))
    register(ProtocolSpec(
        name="chen-chen",
        summary="[11] Chen-Chen: constant-state SS-LE, super-exponential time (analytic model)",
        analytic_model=_chen_chen_model,
        reference="[11] Chen, Chen",
    ))
    register(ProtocolSpec(
        name="thue-morse",
        summary="Thue-Morse cube-freeness substrate of [11] (certified analytic checks)",
        analytic_model=_thue_morse_model,
        reference="[27] Thue",
    ))


_register_builtin_specs()
