"""Adversarial initial-configuration catalogue for self-stabilization experiments."""

from repro.adversary.initial_configs import (
    ADVERSARIES,
    adversary_by_name,
    all_leaders,
    build,
    corrupted_safe,
    half_leaders,
    invalid_tokens,
    leaderless_hot,
    leaderless_trap,
    stale_signals,
    uniform,
)

__all__ = [
    "ADVERSARIES",
    "adversary_by_name",
    "all_leaders",
    "build",
    "corrupted_safe",
    "half_leaders",
    "invalid_tokens",
    "leaderless_hot",
    "leaderless_trap",
    "stale_signals",
    "uniform",
]
