"""Adversarial initial-configuration generators.

Self-stabilization quantifies over *every* initial configuration, so the
experiments draw starting points from a catalogue of adversaries rather than
a single distribution.  Each generator returns a
:class:`~repro.core.configuration.Configuration` for the ``P_PL`` state space;
protocol-specific adversaries for the baselines live next to their protocols.

The catalogue (used by the convergence experiments and the failure-injection
tests):

``uniform``
    every field of every agent drawn independently at random — the default
    adversary of the literature;
``leaderless_trap``
    no leader, distances and segment IDs as self-consistent as the topology
    allows, clocks cold — the configuration from which detection takes the
    longest;
``leaderless_hot``
    the same but with every clock already saturated (isolates the
    token-checking machinery, Lemma 3.7's ``C_det``);
``all_leaders``
    every agent a freshly created leader — the elimination stress test;
``half_leaders``
    every second agent a leader;
``corrupted_safe``
    a safe configuration with a handful of agents overwritten at random —
    the transient-fault recovery scenario;
``invalid_tokens``
    a safe configuration sprinkled with off-trajectory tokens;
``stale_signals``
    a leaderless configuration in which resetting signals with maximal TTL
    and bullet-absence signals survive from a previous incarnation — the
    machinery must flush them before it can detect anything.
"""

from __future__ import annotations

from math import isqrt
from typing import Callable, Dict, List

from repro.core.configuration import Configuration
from repro.core.errors import InvalidParameterError
from repro.core.protocol import Protocol
from repro.core.rng import RandomSource, ensure_source
from repro.topology.graph import Population
from repro.protocols.ppl import (
    MODE_CONSTRUCT,
    PPLParams,
    PPLState,
    adversarial_configuration,
    all_leaders_configuration,
    configuration_with_invalid_tokens,
    corrupted_safe_configuration,
    leaderless_configuration,
    many_leaders_configuration,
)

#: Signature shared by every adversary: (n, params, rng) -> Configuration.
Adversary = Callable[[int, PPLParams, RandomSource], Configuration]


def uniform(n: int, params: PPLParams, rng: RandomSource) -> Configuration:
    """Independently uniform states — the standard adversary."""
    return adversarial_configuration(n, params, rng)


def leaderless_trap(n: int, params: PPLParams, rng: RandomSource) -> Configuration:
    """Leaderless, self-consistent, cold clocks: the slowest detection scenario."""
    del rng  # deterministic by construction
    return leaderless_configuration(n, params, detection_mode=False)


def leaderless_hot(n: int, params: PPLParams, rng: RandomSource) -> Configuration:
    """Leaderless with saturated clocks: detection machinery active from step one."""
    del rng
    return leaderless_configuration(n, params, detection_mode=True)


def all_leaders(n: int, params: PPLParams, rng: RandomSource) -> Configuration:
    """Every agent is a leader."""
    del rng
    return all_leaders_configuration(n, params)


def half_leaders(n: int, params: PPLParams, rng: RandomSource) -> Configuration:
    """Roughly every second agent is a leader, at random positions."""
    return many_leaders_configuration(n, params, leaders=max(1, n // 2), rng=rng)


def corrupted_safe(n: int, params: PPLParams, rng: RandomSource) -> Configuration:
    """A converged population hit by transient faults at a quarter of the agents."""
    return corrupted_safe_configuration(n, params, corruptions=max(1, n // 4), rng=rng)


def invalid_tokens(n: int, params: PPLParams, rng: RandomSource) -> Configuration:
    """A safe-looking configuration with off-trajectory tokens planted on it."""
    return configuration_with_invalid_tokens(n, params, rng=rng)


def stale_signals(n: int, params: PPLParams, rng: RandomSource) -> Configuration:
    """Leaderless but full of leftover resetting and bullet-absence signals."""
    configuration = leaderless_configuration(n, params, detection_mode=False)
    states: List[PPLState] = configuration.states()
    for agent, state in enumerate(states):
        state.mode = MODE_CONSTRUCT
        state.signal_r = params.kappa_max if agent % 3 == 0 else rng.randint(0, params.kappa_max)
        state.signal_b = 1 if agent % 2 == 0 else 0
        state.bullet = rng.randint(0, 2)
    return Configuration(states)


# ---------------------------------------------------------------------- #
# Protocol-generic, topology-aware families
# ---------------------------------------------------------------------- #
def _state_with_leader_flag(protocol: Protocol, rng: RandomSource,
                            want_leader: bool):
    """A random state whose leader output matches ``want_leader``.

    Bounded rejection sampling over ``protocol.random_state``: every
    registered protocol's state space contains both outputs with constant
    probability under its random-state distribution, so the bound exists
    only to turn a pathological custom protocol into a loud error instead
    of a hang.
    """
    for _ in range(256):
        state = protocol.random_state(rng)
        if protocol.is_leader(state) == want_leader:
            return state
    raise InvalidParameterError(
        f"protocol {protocol.name!r}: could not draw a random state with "
        f"is_leader={want_leader} in 256 attempts"
    )


def packed_leader_row(protocol: Protocol, n: int, rng: RandomSource,
                      population: Population) -> Configuration:
    """Torus worst case: every leader packed into one grid row (row 0).

    On a 2D torus the elimination dynamics must drain an entire row of
    colliding leaders through its ring of columns — the per-topology
    adversarial start the PR-3 topology work left open.  On populations
    without grid coordinates the "row" degrades to the first
    ``max(1, isqrt(n))`` agents: a contiguous packed run of leaders, the
    analogous worst case on a ring.

    Per-agent states come from per-index child streams
    (``rng.spawn(f"agent-{i}")``), so the configuration is a pure function
    of the seed and the agent index — independent of iteration order, and
    stable when the topology (not the size) changes.
    """
    coordinates = getattr(population, "coordinates", None)
    if coordinates is not None:
        in_row = [coordinates(agent)[0] == 0 for agent in range(n)]
    else:
        span = max(1, isqrt(n))
        in_row = [agent < span for agent in range(n)]
    states = [
        _state_with_leader_flag(protocol, rng.spawn(f"agent-{agent}"),
                                want_leader)
        for agent, want_leader in enumerate(in_row)
    ]
    return Configuration(states)


#: Registry used by the experiment harness and the failure-injection tests.
ADVERSARIES: Dict[str, Adversary] = {
    "uniform": uniform,
    "leaderless_trap": leaderless_trap,
    "leaderless_hot": leaderless_hot,
    "all_leaders": all_leaders,
    "half_leaders": half_leaders,
    "corrupted_safe": corrupted_safe,
    "invalid_tokens": invalid_tokens,
    "stale_signals": stale_signals,
}


def adversary_by_name(name: str) -> Adversary:
    """Look up an adversary; raises :class:`InvalidParameterError` for unknown names."""
    try:
        return ADVERSARIES[name]
    except KeyError as exc:
        known = ", ".join(sorted(ADVERSARIES))
        raise InvalidParameterError(f"unknown adversary {name!r}; known: {known}") from exc


def build(name: str, n: int, params: PPLParams,
          rng: "RandomSource | int | None" = None) -> Configuration:
    """Build the named adversarial configuration."""
    return adversary_by_name(name)(n, params, ensure_source(rng))
