"""repro: reproduction of the PODC 2023 near time-optimal SS-LE ring protocol.

The package implements, from scratch, the population-protocol simulation
substrate, the paper's protocol ``P_PL`` (self-stabilizing leader election on
directed rings with ``polylog(n)`` states), the ring-orientation protocol
``P_OR``, the Table-1 baseline protocols, and the experiment harnesses that
regenerate every table and figure of the paper.

Quickstart
----------
>>> from repro import DirectedRing, PPLProtocol, Simulation
>>> from repro.protocols.ppl import adversarial_configuration, is_safe
>>> protocol = PPLProtocol.for_population(16, kappa_factor=4)
>>> ring = DirectedRing(16)
>>> start = adversarial_configuration(16, protocol.params, rng=1)
>>> sim = Simulation(protocol, ring, start, rng=2)
>>> result = sim.run_until(lambda s: is_safe(s, protocol.params),
...                        max_steps=400_000, check_interval=64)
>>> result.satisfied
True
"""

from repro.api import (
    ExperimentBuilder,
    ExperimentConfig,
    ExperimentResult,
    ProtocolSpec,
    experiment,
    run_spec,
)
from repro.core import (
    BatchedSimulation,
    Configuration,
    ConvergenceError,
    NumpySimulation,
    RandomSource,
    ReproError,
    RunResult,
    SequenceScheduler,
    Simulation,
    StateEncoder,
    StateSpaceError,
    UniformRandomScheduler,
    numpy_available,
)
from repro.protocols.ppl import PPLParams, PPLProtocol, PPLState
from repro.topology import (
    CompleteGraph,
    DirectedRing,
    Population,
    RandomRegularGraph,
    Torus2D,
    UndirectedRing,
    build_topology,
    topology_names,
)

__version__ = "1.1.0"

__all__ = [
    "BatchedSimulation",
    "CompleteGraph",
    "Configuration",
    "ConvergenceError",
    "DirectedRing",
    "ExperimentBuilder",
    "ExperimentConfig",
    "ExperimentResult",
    "NumpySimulation",
    "PPLParams",
    "PPLProtocol",
    "PPLState",
    "Population",
    "ProtocolSpec",
    "RandomRegularGraph",
    "RandomSource",
    "ReproError",
    "RunResult",
    "SequenceScheduler",
    "Simulation",
    "StateEncoder",
    "StateSpaceError",
    "Torus2D",
    "UndirectedRing",
    "UniformRandomScheduler",
    "__version__",
    "build_topology",
    "experiment",
    "numpy_available",
    "run_spec",
    "topology_names",
]
