#!/usr/bin/env python3
"""End-to-end tour of the experiment service from a client's seat.

Starts an in-process service (so the example is self-contained — point
``--url`` at a running ``repro-ssle serve`` to skip that), then walks the
whole job lifecycle through :class:`repro.service.client.ServiceClient`:

1. submit a fischer-jiang sweep and watch its per-point progress,
2. fetch the result (the exact ``repro-ssle run --format json`` payload),
3. resubmit the identical request and observe ZERO executed trials — the
   warm service served everything from the results store,
4. submit a second job and cancel it mid-flight: the completed points
   survive, the rest are skipped.

Run:  python examples/service_client.py [--url http://host:port]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
import threading

from repro.service import ExperimentServer, JobManager, ServiceClient, WarmPool
from repro.store import ResultsStore

PAYLOAD = {
    "protocol": "fischer-jiang",
    "sizes": [8, 16],
    "trials": 4,
    "max_steps": 600_000,
    "seed": 7,
}


def start_background_service() -> str:
    """A service on an ephemeral port in a daemon thread; returns its URL."""
    store = ResultsStore(tempfile.mkdtemp(prefix="repro-service-"))
    ready = threading.Event()
    url: list = []

    def run() -> None:
        async def serve() -> None:
            manager = JobManager(backend=WarmPool(workers=0), store=store)
            server = ExperimentServer(manager)
            await server.start("127.0.0.1", 0)
            url.append(f"http://127.0.0.1:{server.port}")
            ready.set()
            await server.serve_forever()

        asyncio.run(serve())

    threading.Thread(target=run, daemon=True).start()
    ready.wait(timeout=10)
    return url[0]


def show_progress(status: dict) -> None:
    progress = status["progress"]
    print(f"  state={status['state']}  points "
          f"{progress['points_completed']}/{progress['points_total']}  "
          f"trials served={progress['trials_served']} "
          f"executed={progress['trials_executed']}")


def main(base_url: str | None = None) -> int:
    client = ServiceClient(base_url or start_background_service())
    info = client.info()
    print(f"service: {info['service']} "
          f"(pool: {info['pool_workers']} worker(s))")

    print("\nsubmitting:", PAYLOAD)
    job = client.submit(PAYLOAD)
    print(f"accepted as {job['id']}")
    final = client.wait(job["id"], timeout=300)
    show_progress(final)
    result = client.result(job["id"])
    for entry in result["results"]:
        print(f"  n={entry['population_size']}: mean_steps="
              f"{entry['mean_steps']:.1f} all_converged="
              f"{entry['all_converged']}")

    print("\nresubmitting the identical request...")
    repeat = client.submit(PAYLOAD)
    show_progress(client.wait(repeat["id"], timeout=300))
    served = client.result(repeat["id"])["store"]
    print(f"  store: served={served['served']} executed={served['executed']}"
          "  <- nothing touched the pool")

    print("\nsubmitting a bigger sweep and cancelling it immediately...")
    doomed = client.submit({**PAYLOAD, "sizes": [8, 16, 24, 32, 48]})
    client.cancel(doomed["id"])
    cancelled = client.wait(doomed["id"], timeout=300)
    show_progress(cancelled)
    skipped = sum(1 for point in cancelled["progress"]["points"]
                  if point["skipped"])
    print(f"  state={cancelled['state']}: completed points kept, "
          f"{skipped} point(s) skipped")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="an already-running service (default: start "
                             "one in-process)")
    sys.exit(main(parser.parse_args().url))
