#!/usr/bin/env python3
"""Scenario: leader election on an anonymous ring with no sense of direction.

``P_PL`` assumes a *directed* ring.  Section 5 of the paper removes that
assumption: a constant-state, self-stabilizing ring-orientation protocol
(``P_OR``) gives every agent a common sense of direction, after which the
directed-ring protocol applies.  This example runs the full three-phase
pipeline the library provides:

1. two-hop coloring (so agents can tell their two neighbors apart),
2. ring orientation with ``P_OR`` (Algorithm 6),
3. leader election with ``P_PL`` on the induced directed ring.

Run:  python examples/unoriented_ring_pipeline.py [n]
"""

from __future__ import annotations

import sys

from repro.protocols.orientation import OrientedRingPipeline


def main(n: int = 20, seed: int = 5) -> int:
    pipeline = OrientedRingPipeline(n, num_colors=5, kappa_factor=8, seed=seed)
    print(f"anonymous undirected ring with {n} agents")
    print("phase 1: two-hop coloring  (substituted substrate, see DESIGN.md)")
    print("phase 2: ring orientation  (P_OR, Algorithm 6, Theorem 5.2)")
    print("phase 3: leader election   (P_PL, Algorithms 1-5, Theorem 3.1)")

    result = pipeline.run(max_steps_per_phase=6_000_000)

    print()
    print(f"coloring phase    : {result.coloring_steps} steps")
    print(f"orientation phase : {result.orientation_steps} steps "
          f"(agreed direction: {result.orientation})")
    print(f"election phase    : {result.election_steps} steps "
          f"(leader at agent {result.leader_index})")
    print(f"total             : {result.total_steps} steps")
    return 0


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    raise SystemExit(main(size))
