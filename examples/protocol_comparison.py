#!/usr/bin/env python3
"""Scenario: choosing an SS-LE protocol — the time/space trade-off of Table 1.

A downstream system designer has a ring of ``n`` devices and must pick a
self-stabilizing leader-election protocol.  The paper's Table 1 frames the
choice: constant-state protocols need an oracle, a divisibility assumption,
or exponential time; the ``O(n)``-state protocol of [28] is time-optimal;
``P_PL`` keeps near-optimal time with only ``polylog(n)`` states.

This example runs the executable contenders side by side on the same ring
sizes, from the same kind of adversarial starts, and prints measured steps
and per-agent memory so the trade-off is visible in numbers.

Run:  python examples/protocol_comparison.py [comma-separated sizes]
"""

from __future__ import annotations

import math
import sys

from repro.api import ExperimentConfig, run_spec
from repro.experiments.reporting import format_table
from repro.protocols.baselines import FischerJiangProtocol, Yokota2021Protocol
from repro.protocols.ppl import PPLParams


def main(sizes=(8, 16, 24)) -> int:
    config = ExperimentConfig(sizes=tuple(sizes), trials=3, max_steps=3_000_000,
                              kappa_factor=4, seed=11)
    rows = []
    for n in config.sizes:
        # One generic registry call per protocol — no per-protocol adapters.
        ppl = run_spec("ppl", n, config)
        yokota = run_spec("yokota2021", n, config)
        fischer = run_spec("fischer-jiang", n, config)
        ppl_states = PPLParams.for_population(n, kappa_factor=config.kappa_factor)
        rows.append((n, "P_PL (this paper)", f"{ppl.mean_steps():.0f}",
                     f"{ppl_states.memory_bits():.1f} bits (polylog n)"))
        rows.append((n, "Yokota et al. 2021", f"{yokota.mean_steps():.0f}",
                     f"{math.log2(Yokota2021Protocol.for_population(n).state_space_size()):.1f}"
                     " bits (O(log n) per agent, O(n) states)"))
        rows.append((n, "Fischer-Jiang + oracle", f"{fischer.mean_steps():.0f}",
                     f"{math.log2(FischerJiangProtocol().state_space_size()):.1f}"
                     " bits (O(1), needs oracle)"))
    print(format_table(
        headers=["n", "protocol", "mean steps to stability", "per-agent memory"],
        rows=rows,
        title="Choosing an SS-LE protocol: measured time vs memory "
              f"(trials={config.trials}, kappa_factor={config.kappa_factor})",
    ))
    print()
    print("Reading guide: P_PL trades roughly a log-factor of time against the")
    print("O(n)-state baseline [28]; the constant-state oracle baseline is only")
    print("available if a failure detector exists in the deployment.")
    return 0


if __name__ == "__main__":
    if len(sys.argv) > 1:
        requested = tuple(int(part) for part in sys.argv[1].split(","))
        raise SystemExit(main(requested))
    raise SystemExit(main())
