#!/usr/bin/env python3
"""Scenario: a ring of cheap sensors recovering from faults without intervention.

The population-protocol model was introduced for exactly this setting: large
collections of passively mobile, resource-starved devices (the paper's
introduction motivates self-stabilization by the unreliability of such
nodes).  This example tells that story end to end on a ring of ``n`` sensors
that elect a coordinator (the leader) with ``P_PL``:

* **Phase 1 — normal operation.**  The ring converges from an arbitrary boot
  state and keeps a unique coordinator.
* **Phase 2 — transient faults.**  A burst of memory corruption hits a
  quarter of the sensors (their entire state is randomised); the ring
  re-converges on its own.
* **Phase 3 — coordinator loss.**  The adversary deletes every leader bit in
  the population (the worst case for leader election: somebody must *notice*
  that no coordinator exists before a new one can be created).  The
  leader-absence detection machinery (clocks, resetting signals, token
  checks) creates a new coordinator and the ring settles again.

Run:  python examples/sensor_ring_recovery.py [n]
"""

from __future__ import annotations

import sys

from repro import DirectedRing, PPLProtocol, Simulation
from repro.core.rng import RandomSource
from repro.protocols.ppl import (
    adversarial_configuration,
    is_safe,
    leader_count,
    random_state,
)


def run_until_safe(simulation: Simulation, params, budget: int, label: str) -> int:
    result = simulation.run_until(
        lambda states: is_safe(states, params),
        max_steps=budget,
        check_interval=len(simulation.states()),
    )
    status = "recovered" if result.satisfied else "DID NOT RECOVER"
    print(f"  {label}: {status} after {result.steps} steps "
          f"(leaders now: {leader_count(simulation.states())})")
    return result.steps


def main(n: int = 24, seed: int = 7) -> int:
    protocol = PPLProtocol.for_population(n, kappa_factor=8)
    params = protocol.params
    ring = DirectedRing(n)
    rng = RandomSource(seed)
    budget = 6_000_000

    print(f"sensor ring with {n} nodes, protocol {protocol.name}")

    # Phase 1 — arbitrary boot state.
    simulation = Simulation(protocol, ring, adversarial_configuration(n, params, rng=seed),
                            rng=seed + 1)
    print("phase 1: boot from an arbitrary state")
    run_until_safe(simulation, params, budget, "initial convergence")

    # Phase 2 — transient memory corruption at a quarter of the sensors.
    print("phase 2: transient faults corrupt 25% of the sensors")
    states = simulation.states()
    victims = list(range(n))
    rng.shuffle(victims)
    for victim in victims[: n // 4]:
        states[victim] = random_state(rng, params)
    print(f"  corrupted sensors: {sorted(victims[: n // 4])}")
    run_until_safe(simulation, params, budget, "fault recovery")

    # Phase 3 — every coordinator disappears at once.
    print("phase 3: the coordinator (and any stray leader bits) vanish")
    for state in simulation.states():
        state.leader = 0
    print(f"  leaders after the wipe: {leader_count(simulation.states())}")
    run_until_safe(simulation, params, budget, "coordinator re-election")

    safe = is_safe(simulation.states(), params)
    print(f"final configuration safe: {safe}")
    return 0 if safe else 1


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    raise SystemExit(main(size))
