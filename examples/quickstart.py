#!/usr/bin/env python3
"""Quickstart: elect a leader on a directed ring from an arbitrary configuration.

This is the smallest end-to-end use of the library's public API:

1. build the protocol ``P_PL`` for a ring of ``n`` agents (the protocol only
   needs the knowledge ``psi = ceil(log2 n) + O(1)``),
2. draw an adversarial initial configuration (self-stabilization must work
   from *any* starting point),
3. run the uniformly random scheduler until the population reaches a safe
   configuration (exactly one leader, forever), and
4. print what happened.

Run:  python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

from repro import DirectedRing, PPLProtocol, Simulation
from repro.protocols.ppl import adversarial_configuration, is_safe, summary


def main(n: int = 32, seed: int = 2023) -> int:
    # kappa_factor is the paper's constant c1 (>= 32 for the stated w.h.p.
    # bounds); 8 keeps the demo snappy without changing the behaviour.
    protocol = PPLProtocol.for_population(n, kappa_factor=8)
    ring = DirectedRing(n)
    start = adversarial_configuration(n, protocol.params, rng=seed)

    simulation = Simulation(protocol, ring, start, rng=seed + 1)
    print(f"protocol : {protocol.name}")
    print(f"ring     : {ring.name}")
    print(f"start    : {summary(simulation.states(), protocol.params)}")

    result = simulation.run_until(
        lambda states: is_safe(states, protocol.params),
        max_steps=5_000_000,
        check_interval=n,
    )

    print(f"converged: {result.satisfied} after {result.steps} steps "
          f"(~{result.steps / n:.0f} parallel time)")
    print(f"end      : {summary(simulation.states(), protocol.params)}")
    leaders = result.configuration.leader_indices(protocol)
    print(f"leader   : agent {leaders[0]}" if len(leaders) == 1 else f"leaders: {leaders}")
    return 0 if result.satisfied else 1


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    raise SystemExit(main(size))
